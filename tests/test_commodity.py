"""Unit tests for commodities (offers, RFBs) and valuations."""

import pytest

from repro.sql import RelationRef, SPJQuery
from repro.trading import AnswerProperties, Offer, RequestForBids
from repro.trading.contracts import Contract
from repro.trading.valuation import WeightedValuation


def props(**kwargs):
    defaults = dict(total_time=1.0, rows=100.0)
    defaults.update(kwargs)
    return AnswerProperties(**defaults)


def query():
    return SPJQuery(relations=(RelationRef.of("R0", "r0"),))


class TestAnswerProperties:
    def test_validation(self):
        with pytest.raises(ValueError):
            props(total_time=-1)
        with pytest.raises(ValueError):
            props(rows=-1)
        with pytest.raises(ValueError):
            props(freshness=1.5)
        with pytest.raises(ValueError):
            props(completeness=-0.1)

    def test_with_money(self):
        assert props().with_money(3.0).money == 3.0

    def test_scaled_time(self):
        scaled = props(total_time=2.0, first_row_time=1.0).scaled_time(1.5)
        assert scaled.total_time == 3.0
        assert scaled.first_row_time == 1.5


class TestOffer:
    def test_offer_ids_unique(self):
        q = query()
        o1 = Offer("s", q, {"r0": frozenset({0})}, props(), True, q.key())
        o2 = Offer("s", q, {"r0": frozenset({0})}, props(), True, q.key())
        assert o1.offer_id != o2.offer_id

    def test_aliases(self):
        q = query()
        o = Offer("s", q, {"r0": frozenset({0})}, props(), True, q.key())
        assert o.aliases == frozenset({"r0"})

    def test_describe(self):
        q = query()
        o = Offer("s", q, {"r0": frozenset({0, 1})}, props(), True, q.key())
        assert "r0:[0, 1]" in o.describe()


class TestRequestForBids:
    def test_reservation_lookup(self):
        q = query()
        rfb = RequestForBids("b", (q,), {q.key(): 5.0})
        assert rfb.reservation_for(q) == 5.0
        other = SPJQuery(relations=(RelationRef.of("R1", "r1"),))
        assert rfb.reservation_for(other) is None


class TestValuation:
    def test_time_only_default(self):
        v = WeightedValuation()
        assert v(props(total_time=2.0, money=100.0)) == 2.0

    def test_money_weight(self):
        v = WeightedValuation(money_weight=0.5)
        assert v(props(total_time=2.0, money=10.0)) == 7.0

    def test_staleness_penalty(self):
        v = WeightedValuation(staleness_penalty=10.0)
        assert v(props(freshness=0.8)) == pytest.approx(1.0 + 2.0)

    def test_incompleteness_penalty(self):
        v = WeightedValuation(incompleteness_penalty=4.0)
        assert v(props(completeness=0.5)) == pytest.approx(1.0 + 2.0)

    def test_first_row_weight(self):
        v = WeightedValuation(first_row_weight=1.0)
        assert v(props(first_row_time=0.5)) == pytest.approx(1.5)


class TestContract:
    def test_surplus(self):
        q = query()
        offer = Offer(
            "s", q, {"r0": frozenset({0})}, props(money=5.0), True, q.key(),
            true_cost=3.0,
        )
        contract = Contract("b", offer, offer.properties)
        assert contract.surplus == pytest.approx(2.0)
        assert contract.seller == "s"
        assert "buys" in contract.describe()
