"""Unit tests for the seller query-rewrite algorithm (Section 3.4)."""

import pytest

from repro.sql import column, eq, in_list
from repro.sql.expr import TRUE, implies
from repro.sql.rewrite import coverage_restriction, rewrite_query


@pytest.fixture
def world(telecom):
    catalog = telecom.catalog
    return catalog.schemas, catalog.schemes


def manager_query(telecom):
    return telecom.manager_query()


class TestPaperExample:
    def test_myconos_rewrite(self, telecom, world):
        """The paper's §3.4 example: Myconos holds the whole invoiceline
        table but only its own customer partition; the rewrite adds the
        office='Myconos' restriction and keeps the aggregate."""
        schemas, schemes = world
        query = telecom.manager_query()
        held = telecom.catalog.held_by("Myconos")
        result = rewrite_query(query, schemas, schemes, held)
        assert result is not None
        assert result.dropped == frozenset()
        assert result.exact_projections
        # customer restricted to the Myconos fragment only
        assert result.coverage["c"] == frozenset({2})
        # invoiceline fully covered
        assert result.coverage["i"] == schemes["invoiceline"].fragment_ids
        # the WHERE clause was simplified: office IN (...) AND office =
        # 'Myconos' collapses to the equality
        office = column("c", "office")
        assert eq(office, "Myconos") in result.query.predicate.conjuncts()
        assert not any(
            c for c in result.query.predicate.conjuncts()
            if c != eq(office, "Myconos") and c.columns() == frozenset({office})
        )

    def test_athens_cannot_contribute_customers(self, telecom, world):
        """Athens holds only office='Athens' customers, disjoint from the
        query's IN-list; with invoiceline replicated it still offers the
        invoice side."""
        schemas, schemes = world
        query = telecom.manager_query()
        held = telecom.catalog.held_by("Athens")
        result = rewrite_query(query, schemas, schemes, held)
        assert result is not None
        assert "c" in result.dropped
        assert set(result.coverage) == {"i"}
        assert not result.exact_projections  # degraded to SELECT *

    def test_node_with_nothing(self, telecom, world):
        schemas, schemes = world
        query = telecom.manager_query()
        assert rewrite_query(query, schemas, schemes, {}) is None


class TestAggregateSafety:
    def test_partial_aggregate_kept_when_partition_attr_grouped(
        self, telecom, world
    ):
        schemas, schemes = world
        query = telecom.manager_query()
        held = {"customer": frozenset({1}), "invoiceline": frozenset({0})}
        result = rewrite_query(query, schemas, schemes, held)
        assert result is not None
        assert result.exact_projections
        assert result.query.has_aggregates

    def test_partial_aggregate_dropped_when_not_aligned(
        self, telecom_colocated
    ):
        """With invoiceline range-partitioned on custid (not grouped), a
        node holding a slice must ship raw rows, not partial sums."""
        catalog = telecom_colocated.catalog
        query = telecom_colocated.manager_query()
        held = catalog.held_by("Myconos")
        result = rewrite_query(query, catalog.schemas, catalog.schemes, held)
        assert result is not None
        assert not result.exact_projections
        assert result.query.is_star

    def test_avg_never_survives_partial(self, telecom, world):
        from repro.sql import Aggregate, SPJQuery

        schemas, schemes = world
        base = telecom.manager_query()
        query = SPJQuery(
            relations=base.relations,
            predicate=base.predicate,
            projections=(
                column("c", "office"),
                Aggregate("avg", column("i", "charge"), "avg_charge"),
            ),
            group_by=base.group_by,
        )
        held = telecom.catalog.held_by("Myconos")
        result = rewrite_query(query, schemas, schemes, held)
        assert result is not None
        assert not result.exact_projections


class TestCoverageSemantics:
    def test_rewritten_predicate_implies_original_selection(
        self, telecom, world
    ):
        schemas, schemes = world
        query = telecom.manager_query()
        for node in telecom.nodes:
            held = telecom.catalog.held_by(node)
            result = rewrite_query(query, schemas, schemes, held)
            if result is None or "c" in result.dropped:
                continue
            assert implies(
                result.query.predicate, query.selection_on("c")
            )

    def test_coverage_restriction_builds_conjunct(self, telecom, world):
        schemas, schemes = world
        query = telecom.manager_query()
        restriction = coverage_restriction(
            query, schemes, {"c": frozenset({1, 2})}
        )
        office = column("c", "office")
        assert restriction.evaluate({office: "Corfu"})
        assert not restriction.evaluate({office: "Athens"})

    def test_unsatisfiable_rewrite_returns_none(self, telecom, world):
        schemas, schemes = world
        query = telecom.manager_query(offices=("Santorini",))
        # Corfu only holds Corfu customers; with invoiceline present the
        # customer side is incompatible so it gets dropped, leaving the
        # invoice side — but a node holding ONLY incompatible customers
        # returns None.
        held = {"customer": frozenset({1})}
        assert rewrite_query(query, schemas, schemes, held) is None

    def test_full_coverage_is_total(self, telecom, world):
        schemas, schemes = world
        query = telecom.manager_query()
        held = {
            "customer": schemes["customer"].fragment_ids,
            "invoiceline": schemes["invoiceline"].fragment_ids,
        }
        result = rewrite_query(query, schemas, schemes, held)
        assert result is not None and result.is_total
