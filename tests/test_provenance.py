"""Tier-1 coverage of the negotiation provenance engine.

Pins the contracts ``docs/OBSERVABILITY.md`` promises for the decision
ledger, ``explain``, trace diffing, and the bench-history store:

* **ledger determinism** — the :class:`NegotiationLedger` rebuilt from a
  traced run is byte-identical between ``workers=1`` and ``workers=4``,
  across repeated same-seed runs, and under the example fault plan;
* **explain fidelity** — every awarded commodity names its winning
  site, settled price, and runner-up margin, and the JSON form is
  byte-identical across worker counts;
* **diff precision** — self-comparison of a deterministic trace is
  empty, and a synthetically perturbed trace is pinpointed at the exact
  injected record and field;
* **gzip determinism** — ``.jsonl.gz`` exports are byte-identical
  across writes and load back to the same rows;
* **history gates** — the append-only bench-history store round-trips
  and the gate checker passes/fails/skips as specified.
"""

import gzip
import itertools
import json
import pathlib

import pytest

import repro.trading.commodity as commodity
from repro.bench.harness import build_world, run_qt_faulty
from repro.faults import FaultPlan
from repro.net import Network
from repro.obs import (
    BenchHistory,
    Gate,
    NegotiationLedger,
    Tracer,
    check_drift,
    check_gates,
    diff_records,
    diff_rows,
    explain,
    jsonl_lines,
    load_trace,
    run_envelope,
    write_jsonl,
)
from repro.trading import (
    BiddingProtocol,
    BuyerPlanGenerator,
    OfferCache,
    QueryTrader,
)
from repro.workload import chain_query

FAULT_PLAN = (
    pathlib.Path(__file__).resolve().parent.parent
    / "examples"
    / "fault_plan.json"
)


def _trade(workers: int = 1, tracer: Tracer | None = None):
    """One small deterministic negotiation; returns the TradingResult."""
    commodity._offer_ids = itertools.count(1)
    world = build_world(nodes=8, n_relations=4, fragments=4, replicas=2,
                        seed=7)
    query = chain_query(3, selection_cat=3)
    network = Network(world.model)
    if tracer is not None:
        network.attach_tracer(tracer)
    protocol = BiddingProtocol()
    if workers > 1:
        from repro.parallel import OfferFarm

        protocol.attach_farm(OfferFarm(workers))
    trader = QueryTrader(
        "client",
        world.seller_agents(offer_cache=OfferCache()),
        network,
        BuyerPlanGenerator(world.builder, "client", workers=workers),
        protocol=protocol,
    )
    return trader.optimize(query)


# ----------------------------------------------------------------------
# Ledger construction and determinism
# ----------------------------------------------------------------------
def test_ledger_attached_and_populated():
    result = _trade(tracer=Tracer())
    ledger = result.ledger
    assert ledger is not None
    assert result.found
    assert ledger.trades and ledger.rounds
    assert ledger.awards, "awarded contracts must appear in the ledger"
    awarded_ids = {a["offer"] for a in ledger.awards}
    assert awarded_ids == {c.offer.offer_id for c in result.contracts}
    for award in ledger.awards:
        entry = ledger.offer(award["offer"])
        assert entry["awarded"] and entry["seller"] == award["seller"]
        assert entry["price"] is not None
    # Ranking edges reference known offers.
    for edge in ledger.rankings:
        assert edge["winner"] in ledger.offers
    # describe() renders without error and names the award count.
    assert str(len(ledger.awards)) in ledger.describe()


def test_no_ledger_without_tracer():
    result = _trade()
    assert result.ledger is None


def test_ledger_byte_identical_across_workers_and_runs():
    serial = _trade(tracer=Tracer()).ledger.to_json()
    parallel = _trade(workers=4, tracer=Tracer()).ledger.to_json()
    repeat = _trade(tracer=Tracer()).ledger.to_json()
    assert serial == parallel
    assert serial == repeat


def test_ledger_byte_identical_under_fault_plan():
    def run():
        commodity._offer_ids = itertools.count(1)
        world = build_world(nodes=8, n_relations=3, fragments=4,
                            replicas=2, seed=7)
        query = chain_query(3, selection_cat=3)
        tracer = Tracer()
        run_qt_faulty(
            world, query, FaultPlan.from_file(str(FAULT_PLAN)),
            timeout=0.05, offer_cache=OfferCache(), tracer=tracer,
        )
        return NegotiationLedger.from_records(tracer.records)

    first, second = run(), run()
    assert first.to_json() == second.to_json()
    # The fault machinery engaged: this is not a vacuous pass.
    assert first.faults


def test_ledger_from_rows_matches_from_records():
    tracer = Tracer()
    _trade(tracer=tracer)
    rows = [json.loads(line) for line in jsonl_lines(tracer.records)]
    from_rows = NegotiationLedger.from_rows(rows)
    from_records = NegotiationLedger.from_records(tracer.records)
    assert from_rows.to_json() == from_records.to_json()


# ----------------------------------------------------------------------
# explain
# ----------------------------------------------------------------------
def test_explain_names_winner_price_and_runner_up():
    result = _trade(tracer=Tracer())
    audit = explain(result)
    assert audit.found
    assert len(audit.commodities) == len(result.contracts)
    by_offer = {c.offer.offer_id: c for c in result.contracts}
    for item in audit.commodities:
        contract = by_offer[item.offer_id]
        assert item.winner == contract.seller
        assert item.price == pytest.approx(contract.offer.properties.money)
        if item.runner_up is not None:
            assert item.margin is not None
            assert item.margin >= 0  # the winner was never outvalued
    rendered = audit.render()
    for item in audit.commodities:
        assert item.winner in rendered


def test_explain_json_identical_across_workers():
    serial = explain(_trade(tracer=Tracer())).to_json()
    parallel = explain(_trade(workers=4, tracer=Tracer())).to_json()
    assert serial == parallel


def test_explain_subquery_filter_and_errors():
    result = _trade(tracer=Tracer())
    full = explain(result)
    some_query = full.commodities[0].query
    filtered = explain(result, subquery=some_query)
    assert filtered.commodities
    assert all(some_query in c.query for c in filtered.commodities)
    none = explain(result, subquery="no-such-subquery")
    assert not none.commodities
    with pytest.raises(ValueError):
        explain(_trade())  # no ledger recorded


# ----------------------------------------------------------------------
# Trace diffing
# ----------------------------------------------------------------------
def _deterministic_rows(tracer: Tracer) -> list[dict]:
    return [json.loads(line) for line in jsonl_lines(tracer.records)]


def test_diff_self_compare_is_empty():
    tracer = Tracer()
    _trade(tracer=tracer)
    rows = _deterministic_rows(tracer)
    diff = diff_rows(rows, rows)
    assert diff.identical
    assert "identical" in diff.render()

    other = Tracer()
    _trade(workers=4, tracer=other)
    assert diff_records(tracer.records, other.records).identical


def test_diff_pinpoints_injected_perturbation():
    tracer = Tracer()
    _trade(tracer=tracer)
    rows = _deterministic_rows(tracer)
    perturbed = [dict(r) for r in rows]
    index = 17
    perturbed[index] = dict(
        perturbed[index],
        args=dict(perturbed[index].get("args") or {}, money=123.456),
    )
    diff = diff_rows(rows, perturbed)
    assert not diff.identical
    assert diff.index == index
    assert any("args.money" in delta["path"] for delta in diff.fields)
    rendered = diff.render()
    assert f"record {index}" in rendered
    assert "123.456" in rendered


def test_diff_reports_truncation():
    tracer = Tracer()
    _trade(tracer=tracer)
    rows = _deterministic_rows(tracer)
    diff = diff_rows(rows, rows[:-5])
    assert not diff.identical
    assert diff.index == len(rows) - 5
    assert diff.b is None


# ----------------------------------------------------------------------
# Gzip trace export
# ----------------------------------------------------------------------
def test_gzip_export_roundtrip_and_determinism(tmp_path):
    tracer = Tracer()
    _trade(tracer=tracer)
    plain = tmp_path / "run.jsonl"
    zipped = tmp_path / "run.jsonl.gz"
    again = tmp_path / "again.jsonl.gz"
    write_jsonl(tracer.records, plain)
    write_jsonl(tracer.records, zipped)
    write_jsonl(tracer.records, again)
    assert zipped.read_bytes()[:2] == b"\x1f\x8b"
    # mtime/filename are pinned, so two writes are byte-identical.
    assert zipped.read_bytes() == again.read_bytes()
    assert gzip.decompress(zipped.read_bytes()) == plain.read_bytes()
    assert load_trace(str(zipped)) == load_trace(str(plain))


# ----------------------------------------------------------------------
# Bench history
# ----------------------------------------------------------------------
def test_history_append_load_latest(tmp_path):
    store = BenchHistory(tmp_path / "hist.jsonl")
    assert store.load() == []
    envelope = run_envelope()
    assert set(envelope) == {
        "schema_version", "git_sha", "generated_at", "cpu_count",
    }
    store.append("alpha", {"speedup": 3.0}, envelope=envelope)
    store.append("beta", {"overhead": 0.01}, envelope=envelope)
    store.append("alpha", {"speedup": 4.0}, envelope=envelope)
    rows = store.load()
    assert len(rows) == 3
    assert all(r["schema_version"] == envelope["schema_version"]
               for r in rows)
    latest = store.latest()
    assert latest["alpha"]["metrics"]["speedup"] == 4.0
    assert latest["beta"]["metrics"]["overhead"] == 0.01
    prev = store.previous("alpha", envelope["cpu_count"])
    assert prev is not None and prev["metrics"]["speedup"] == 3.0


def test_history_skips_torn_lines(tmp_path):
    path = tmp_path / "hist.jsonl"
    store = BenchHistory(path)
    store.append("alpha", {"x": 1})
    with open(path, "a") as handle:
        handle.write('{"torn": \n')
    assert len(store.load()) == 1


def test_check_gates_pass_fail_skip_missing():
    gates = (
        Gate("a", "speedup", "ge", 2.0),
        Gate("b", "overhead", "lt", 0.05),
        Gate("c", "speedup", "ge", 2.0, when="enforced"),
        Gate("d", "anything", "ge", 0.0),
    )
    latest = {
        "a": {"metrics": {"speedup": 3.0}},
        "b": {"metrics": {"overhead": 0.2}},
        "c": {"metrics": {"speedup": 0.5, "enforced": False}},
    }
    verdicts = {v["bench"]: v["status"] for v in check_gates(latest, gates)}
    assert verdicts == {
        "a": "ok", "b": "FAIL", "c": "skipped", "d": "missing",
    }


def test_check_drift(tmp_path):
    store = BenchHistory(tmp_path / "hist.jsonl")
    envelope = run_envelope()
    store.append("enumeration", {"eight_join_speedup": 6.0},
                 envelope=envelope)
    store.append("enumeration", {"eight_join_speedup": 2.0},
                 envelope=envelope)
    verdicts = check_drift(store, store.latest(), regress_pct=0.5)
    drifted = [v for v in verdicts if v["status"] == "FAIL"]
    assert drifted and drifted[0]["bench"] == "enumeration"
    # A loose threshold tolerates the same drop.
    loose = check_drift(store, store.latest(), regress_pct=0.8)
    assert all(v["status"] != "FAIL" for v in loose)


# ----------------------------------------------------------------------
# CLI integration
# ----------------------------------------------------------------------
SQL = "SELECT * FROM R0 r0, R1 r1 WHERE r0.id = r1.id"
SMALL = ["--nodes", "4", "--relations", "2", "--rows", "400"]


def test_cli_explain_json(capsys):
    from repro.cli import main

    assert main(["explain", SQL, *SMALL, "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["found"]
    assert payload["commodities"]
    for item in payload["commodities"]:
        assert item["winner"] and item["price"] is not None


def test_cli_trade_trace_out_gz_and_diff(tmp_path, capsys):
    from repro.cli import main

    a = tmp_path / "a.jsonl"
    b = tmp_path / "b.jsonl.gz"
    assert main(["trade", SQL, *SMALL, "--trace-out", str(a)]) == 0
    assert main(["trade", SQL, *SMALL, "--trace-out", str(b)]) == 0
    capsys.readouterr()
    assert main(["diff-trace", str(a), str(b)]) == 0
    assert "identical" in capsys.readouterr().out

    perturbed = tmp_path / "c.jsonl"
    rows = load_trace(str(a))
    rows[5] = dict(rows[5], site="intruder")
    with open(perturbed, "w") as handle:
        for row in rows:
            handle.write(json.dumps(row, sort_keys=True) + "\n")
    assert main(["diff-trace", str(a), str(perturbed)]) == 1
    assert "record 5" in capsys.readouterr().out
    assert main(["diff-trace", str(a), str(tmp_path / "missing.jsonl")]) == 2


def test_cli_report_directory(tmp_path, capsys):
    from repro.cli import main

    assert main(["trade", SQL, *SMALL,
                 "--trace-out", str(tmp_path / "a.jsonl")]) == 0
    assert main(["trade", SQL, *SMALL,
                 "--trace-out", str(tmp_path / "b.jsonl.gz")]) == 0
    capsys.readouterr()
    assert main(["report", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "cross-run report: 2 trace(s)" in out
    assert "a.jsonl" in out and "b.jsonl.gz" in out


def test_cli_bench_check(tmp_path, capsys):
    from repro.cli import main

    path = tmp_path / "hist.jsonl"
    assert main(["bench-check", "--history", str(path)]) == 2

    store = BenchHistory(path)
    store.append("enumeration", {"eight_join_speedup": 6.0})
    assert main(["bench-check", "--history", str(path)]) == 0
    assert "enumeration" in capsys.readouterr().out

    store.append("enumeration", {"eight_join_speedup": 1.0})
    assert main(["bench-check", "--history", str(path), "--json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["failed"] >= 1
