"""Unit tests for the predicate expression algebra."""

import pytest

from repro.sql.expr import (
    FALSE,
    TRUE,
    And,
    Column,
    Comparison,
    DomainConstraint,
    InList,
    Literal,
    Not,
    Or,
    analyze_conjunction,
    column,
    conjoin,
    eq,
    ge,
    gt,
    implies,
    in_list,
    le,
    lit,
    lt,
    ne,
    normalize_conjunction,
    restriction_overlaps,
    satisfiable,
)

C = column("t", "a")
D = column("t", "b")
E = column("s", "a")


class TestBasics:
    def test_column_identity(self):
        assert column("t", "a") == Column("t", "a")
        assert C != D

    def test_literal_sql_escaping(self):
        assert Literal("O'Neil").sql() == "'O''Neil'"

    def test_comparison_requires_known_op(self):
        with pytest.raises(ValueError):
            Comparison("~", C, lit(3))

    def test_eq_normalizes_literal_to_right(self):
        cmp = eq(5, C)
        assert cmp.left == C and cmp.right == Literal(5)
        assert cmp.op == "="

    def test_flip_preserves_semantics(self):
        cmp = lt(5, C)  # 5 < a  ->  a > 5
        assert cmp.op == ">"
        assert cmp.evaluate({C: 6}) is True
        assert cmp.evaluate({C: 4}) is False

    def test_column_column_ordering(self):
        cmp = eq(E, C).normalized()
        # s.a < t.a lexicographically, so s.a stays left.
        assert cmp.left == E

    def test_is_join(self):
        assert eq(C, E).is_join
        assert not eq(C, D).is_join  # same table
        assert not eq(C, 3).is_join

    def test_tables(self):
        assert eq(C, E).tables() == frozenset({"t", "s"})

    def test_rename_tables(self):
        renamed = eq(C, E).rename_tables({"t": "x"})
        assert renamed.tables() == frozenset({"x", "s"})

    def test_in_list_simplifies_singleton(self):
        assert in_list(C, [5]).simplify() == eq(C, 5)

    def test_in_list_empty_is_false(self):
        assert InList(C, frozenset()).simplify() is FALSE

    def test_in_list_evaluate(self):
        pred = in_list(C, [1, 2, 3])
        assert pred.evaluate({C: 2})
        assert not pred.evaluate({C: 9})


class TestEvaluation:
    @pytest.mark.parametrize(
        "op,value,expected",
        [
            ("=", 5, True),
            ("!=", 5, False),
            ("<", 6, True),
            ("<=", 5, True),
            (">", 4, True),
            (">=", 6, False),
        ],
    )
    def test_comparison_ops(self, op, value, expected):
        assert Comparison(op, C, lit(value)).evaluate({C: 5}) is expected

    def test_and_or_not(self):
        pred = (eq(C, 1) | eq(C, 2)) & ~eq(D, 9)
        assert pred.evaluate({C: 1, D: 0})
        assert not pred.evaluate({C: 1, D: 9})
        assert not pred.evaluate({C: 3, D: 0})

    def test_true_false(self):
        assert TRUE.evaluate({}) is True
        assert FALSE.evaluate({}) is False


class TestSimplify:
    def test_constant_folding(self):
        assert eq(3, 3).simplify() is TRUE
        assert eq(3, 4).simplify() is FALSE

    def test_same_column_tautology(self):
        assert Comparison("=", C, C).simplify() is TRUE
        assert Comparison("<", C, C).simplify() is FALSE

    def test_and_contradiction_same_column(self):
        pred = eq(C, "x") & eq(C, "y")
        assert pred.simplify() is FALSE

    def test_and_absorbs_true(self):
        assert (TRUE & eq(C, 1)).simplify() == eq(C, 1)

    def test_or_absorbs_false(self):
        assert (FALSE | eq(C, 1)).simplify() == eq(C, 1)

    def test_or_short_circuit_true(self):
        assert (TRUE | eq(C, 1)).simplify() is TRUE

    def test_range_contradiction(self):
        pred = gt(C, 10) & lt(C, 5)
        assert pred.simplify() is FALSE

    def test_integer_open_interval_empty(self):
        pred = gt(C, 3) & lt(C, 4)
        assert pred.simplify() is FALSE

    def test_in_list_intersection_contradiction(self):
        pred = in_list(C, [1, 2]) & in_list(C, [3, 4])
        assert pred.simplify() is FALSE

    def test_not_not(self):
        assert Not(Not(eq(C, 1))).simplify() == eq(C, 1)

    def test_not_pushes_through_comparison(self):
        assert Not(lt(C, 5)).simplify() == ge(C, 5)

    def test_deduplicates_conjuncts(self):
        pred = And((eq(C, 1), eq(C, 1)))
        assert pred.simplify() == eq(C, 1)

    def test_satisfiable_and_survives(self):
        pred = ge(C, 1) & le(C, 10) & ne(C, 5)
        assert pred.simplify() is not FALSE


class TestConjoin:
    def test_flattens_nested_ands(self):
        pred = conjoin([eq(C, 1) & eq(D, 2), eq(E, 3)])
        assert len(pred.conjuncts()) == 3

    def test_false_short_circuit(self):
        assert conjoin([eq(C, 1), FALSE]) is FALSE

    def test_empty_is_true(self):
        assert conjoin([]) is TRUE

    def test_single(self):
        assert conjoin([eq(C, 1)]) == eq(C, 1)


class TestDomainConstraint:
    def test_equality_becomes_allowed_set(self):
        c = DomainConstraint.from_comparison("=", 5)
        assert c.admits(5) and not c.admits(6)

    def test_interval(self):
        c = DomainConstraint.from_comparison(">=", 3).intersect(
            DomainConstraint.from_comparison("<", 7)
        )
        assert c.admits(3) and c.admits(6)
        assert not c.admits(7) and not c.admits(2)

    def test_excluded(self):
        c = DomainConstraint.from_comparison("!=", 4)
        assert c.admits(3) and not c.admits(4)

    def test_is_empty_for_disjoint_sets(self):
        c = DomainConstraint(allowed=frozenset({1})).intersect(
            DomainConstraint(allowed=frozenset({2}))
        )
        assert c.is_empty()

    def test_subsumes_interval(self):
        wide = DomainConstraint.from_comparison(">=", 0).intersect(
            DomainConstraint.from_comparison("<=", 100)
        )
        narrow = DomainConstraint.from_comparison(">=", 10).intersect(
            DomainConstraint.from_comparison("<=", 20)
        )
        assert wide.subsumes(narrow)
        assert not narrow.subsumes(wide)

    def test_subsumes_sets(self):
        big = DomainConstraint(allowed=frozenset({1, 2, 3}))
        small = DomainConstraint(allowed=frozenset({2}))
        assert big.subsumes(small)
        assert not small.subsumes(big)

    def test_incomparable_types_do_not_crash(self):
        c = DomainConstraint.from_comparison(">", 5)
        assert not c.admits("abc")

    def test_to_expr_round_trip(self):
        c = DomainConstraint.from_comparison(">=", 3).intersect(
            DomainConstraint.from_comparison("<", 7)
        )
        expr = c.to_expr(C)
        assert expr.evaluate({C: 5})
        assert not expr.evaluate({C: 8})


class TestAnalyzeConjunction:
    def test_splits_columns_and_residual(self):
        join = eq(C, E)
        constraints, residual, ok = analyze_conjunction(
            [eq(C, 5), lt(D, 3), join]
        )
        assert ok
        assert set(constraints) == {C, D}
        assert residual == (join,)

    def test_merges_same_column(self):
        constraints, _, ok = analyze_conjunction([ge(C, 1), le(C, 10)])
        assert ok
        assert constraints[C].admits(5)
        assert not constraints[C].admits(11)


class TestImplies:
    def test_equality_implies_in_list(self):
        assert implies(eq(C, "x"), in_list(C, ["x", "y"]))

    def test_in_list_does_not_imply_equality(self):
        assert not implies(in_list(C, ["x", "y"]), eq(C, "x"))

    def test_narrow_range_implies_wide(self):
        assert implies(ge(C, 10) & lt(C, 20), ge(C, 0))

    def test_unrelated_columns(self):
        assert not implies(eq(C, 1), eq(D, 1))

    def test_false_implies_anything(self):
        assert implies(FALSE, eq(C, 1))

    def test_anything_implies_true(self):
        assert implies(eq(C, 1), TRUE)

    def test_join_conjunct_syntactic(self):
        join = eq(C, E)
        assert implies(join & eq(C, 1), join)
        assert not implies(eq(C, 1), join)


class TestSatisfiable:
    def test_or_of_ranges_contradiction(self):
        # The bug that motivated bounded-DNF satisfiability: a fragment
        # restriction AND an OR of complementary ranges.
        fragment = ge(C, 200) & lt(C, 400)
        complement = lt(C, 200) | (ge(C, 400) & lt(C, 600)) | ge(C, 600)
        assert not satisfiable(fragment & complement)

    def test_or_with_live_branch(self):
        pred = ge(C, 200) & (lt(C, 100) | gt(C, 300))
        assert satisfiable(pred)

    def test_plain_satisfiable(self):
        assert satisfiable(eq(C, 1) & eq(D, 2))

    def test_restriction_overlaps(self):
        assert not restriction_overlaps(eq(C, "a"), eq(C, "b"))
        assert restriction_overlaps(eq(C, "a"), eq(D, "b"))


class TestNormalizeConjunction:
    def test_merges_in_list_with_equality(self):
        # The paper's rewrite example: office IN (Corfu, Myconos) AND
        # office = Myconos simplifies to office = Myconos.
        office = column("customer", "office")
        pred = in_list(office, ["Corfu", "Myconos"]) & eq(office, "Myconos")
        assert normalize_conjunction(pred) == eq(office, "Myconos")

    def test_detects_contradiction(self):
        pred = in_list(C, [1, 2]) & eq(C, 3)
        assert normalize_conjunction(pred) is FALSE

    def test_keeps_joins(self):
        join = eq(C, E)
        result = normalize_conjunction(join & eq(C, 5))
        assert join in result.conjuncts()

    def test_true_stays_true(self):
        assert normalize_conjunction(TRUE) is TRUE


class TestSql:
    def test_round_trip_shapes(self):
        pred = (eq(C, 1) & in_list(D, [1, 2])) | gt(E, 0)
        text = pred.sql()
        assert "OR" in text and "AND" in text and "IN" in text
