"""Shared fixtures: federations, builders, and the telecom scenario."""

from __future__ import annotations

import pytest

from repro.catalog import FederationConfig, build_federation
from repro.cost import (
    CardinalityEstimator,
    CostModel,
    stats_for_catalog,
)
from repro.net import Network
from repro.optimizer import PlanBuilder
from repro.sql import Relation
from repro.trading import BuyerPlanGenerator, QueryTrader, SellerAgent
from repro.workload import build_telecom_scenario


@pytest.fixture
def telecom():
    """The paper's motivating scenario (invoiceline replicated whole)."""
    return build_telecom_scenario(
        n_offices=4,
        customers_per_office=200,
        lines_per_customer=3,
        invoice_placement="full",
    )


@pytest.fixture
def telecom_colocated():
    return build_telecom_scenario(
        n_offices=4,
        customers_per_office=200,
        lines_per_customer=3,
        invoice_placement="colocated",
    )


@pytest.fixture
def telecom_schemas(telecom):
    return telecom.catalog.schemas


def make_federation(
    nodes=8, n_relations=3, rows=10_000, fragments=4, replicas=2, seed=7
):
    """A uniform federation plus its estimator/builder plumbing."""
    config = FederationConfig.uniform(
        nodes=nodes,
        n_relations=n_relations,
        rows=rows,
        fragments=fragments,
        replicas=replicas,
        seed=seed,
    )
    catalog, node_list = build_federation(config)
    estimator = CardinalityEstimator(stats_for_catalog(catalog), catalog.schemas)
    model = CostModel()
    builder = PlanBuilder(estimator, model, schemes=catalog.schemes)
    return catalog, node_list, estimator, model, builder


def make_trader(catalog, node_list, builder, model, mode="dp", **kwargs):
    """A QueryTrader over all data-holding nodes, buying from 'client'."""
    network = Network(model)
    sellers = {
        node: SellerAgent(catalog.local(node), builder)
        for node in node_list
        if node != "client"
    }
    plangen = BuyerPlanGenerator(builder, "client", mode=mode)
    return QueryTrader("client", sellers, network, plangen, **kwargs), network


@pytest.fixture
def federation():
    return make_federation()


@pytest.fixture
def small_schemas():
    """Tiny hand-made schemas for parser and query-model tests."""
    return {
        "customer": Relation.of(
            "customer", "custid", ("custname", "str"), ("office", "str")
        ),
        "invoiceline": Relation.of(
            "invoiceline", "invid", "linenum", "custid", ("charge", "float")
        ),
    }
