"""Unit tests for the physical plan algebra and cost semantics."""

import pytest

from repro.optimizer.plans import (
    FragmentScan,
    HashJoin,
    NestedLoopJoin,
    Purchased,
    Sort,
    Transfer,
    Union,
)
from repro.sql import RelationRef, SPJQuery, column, eq
from repro.sql.expr import TRUE
from tests.conftest import make_federation


@pytest.fixture
def builder(federation):
    *_, builder = federation
    return builder


A2R = {"r0": "R0", "r1": "R1", "r2": "R2"}
R0 = RelationRef.of("R0", "r0")
R1 = RelationRef.of("R1", "r1")


class TestScan:
    def test_rows_from_fragments(self, builder):
        scan = builder.scan(R0, [0, 1], TRUE, "node0", A2R)
        assert scan.rows == pytest.approx(5000)  # 2 of 4 fragments

    def test_selection_reduces_rows(self, builder):
        scan = builder.scan(
            R0, [0, 1, 2, 3], eq(column("r0", "cat"), 1), "node0", A2R
        )
        assert scan.rows == pytest.approx(1000)

    def test_selection_costs_cpu(self, builder):
        plain = builder.scan(R0, [0], TRUE, "node0", A2R)
        filtered = builder.scan(
            R0, [0], eq(column("r0", "cat"), 1), "node0", A2R
        )
        assert filtered.op_time > plain.op_time

    def test_aliases(self, builder):
        scan = builder.scan(R0, [0], TRUE, "node0", A2R)
        assert scan.aliases() == frozenset({"r0"})


class TestJoin:
    def test_hash_join_for_equi(self, builder):
        left = builder.scan(R0, [0, 1, 2, 3], TRUE, "node0", A2R)
        right = builder.scan(R1, [0, 1, 2, 3], TRUE, "node0", A2R)
        join = builder.join(
            left, right, [eq(column("r0", "ref0"), column("r1", "id"))], A2R
        )
        assert isinstance(join, HashJoin)
        assert join.rows == pytest.approx(10_000)

    def test_nested_loop_for_cross(self, builder):
        left = builder.scan(R0, [0], TRUE, "node0", A2R)
        right = builder.scan(R1, [0], TRUE, "node0", A2R)
        join = builder.join(left, right, [], A2R)
        assert isinstance(join, NestedLoopJoin)
        assert join.rows == pytest.approx(left.rows * right.rows)

    def test_remote_child_gets_transfer(self, builder):
        left = builder.scan(R0, [0], TRUE, "node0", A2R)
        right = builder.scan(R1, [0], TRUE, "node1", A2R)
        join = builder.join(
            left,
            right,
            [eq(column("r0", "ref0"), column("r1", "id"))],
            A2R,
            site="node0",
        )
        assert isinstance(join.right, Transfer)
        assert join.right.dest == "node0"
        assert join.right.site == "node1"  # shipping happens at the source


class TestResponseTime:
    def test_same_site_children_serialize(self, builder):
        a = builder.scan(R0, [0], TRUE, "node0", A2R)
        b = builder.scan(R1, [0], TRUE, "node0", A2R)
        union = builder.union([a, b], "node0")
        assert union.response_time() == pytest.approx(
            union.op_time + a.response_time() + b.response_time()
        )

    def test_remote_children_parallelize(self, builder):
        a = builder.scan(R0, [0], TRUE, "node1", A2R)
        b = builder.scan(R1, [0], TRUE, "node2", A2R)
        union = builder.union([a, b], "node0")
        # both children arrive via transfers from distinct sites
        expected = union.op_time + max(
            child.response_time() for child in union.children
        )
        assert union.response_time() == pytest.approx(expected)

    def test_work_time_sums_everything(self, builder):
        a = builder.scan(R0, [0], TRUE, "node1", A2R)
        b = builder.scan(R1, [0], TRUE, "node2", A2R)
        union = builder.union([a, b], "node0")
        total = union.op_time + sum(
            c.work_time() for c in union.children
        )
        assert union.work_time() == pytest.approx(total)

    def test_memoized(self, builder):
        scan = builder.scan(R0, [0], TRUE, "node0", A2R)
        first = scan.response_time()
        assert scan.response_time() is first or scan.response_time() == first


class TestPurchased:
    def make_purchased(self, builder, seller="node1", time=1.0):
        query = SPJQuery(relations=(R0,))
        return builder.purchased(
            query,
            seller,
            rows=100,
            total_time=time,
            coverage={"r0": frozenset({0})},
            buyer_site="client",
            money=0.5,
        )

    def test_leaf_cost_is_offer_time(self, builder):
        p = self.make_purchased(builder)
        assert p.response_time() == 1.0
        assert p.money == 0.5

    def test_collocate_skips_delivered(self, builder):
        p = self.make_purchased(builder)
        assert builder.collocate(p, "client") is p

    def test_collocate_reships_elsewhere(self, builder):
        p = self.make_purchased(builder)
        moved = builder.collocate(p, "node5")
        assert isinstance(moved, Transfer)

    def test_same_seller_purchases_serialize(self, builder):
        p1 = self.make_purchased(builder, "node1", 1.0)
        p2 = self.make_purchased(builder, "node1", 2.0)
        union = builder.union([p1, p2], "client")
        assert union.response_time() >= 3.0

    def test_distinct_sellers_overlap(self, builder):
        p1 = self.make_purchased(builder, "node1", 1.0)
        p2 = self.make_purchased(builder, "node2", 2.0)
        union = builder.union([p1, p2], "client")
        assert union.response_time() == pytest.approx(
            union.op_time + 2.0
        )


class TestOtherOperators:
    def test_union_single_input_passthrough(self, builder):
        scan = builder.scan(R0, [0], TRUE, "node0", A2R)
        assert builder.union([scan], "node0") is scan

    def test_union_distinct_costs_more(self, builder):
        a = builder.scan(R0, [0], TRUE, "node0", A2R)
        b = builder.scan(R0, [1], TRUE, "node0", A2R)
        plain = builder.union([a, b], "node0")
        distinct = builder.union([a, b], "node0", distinct=True)
        assert distinct.op_time > plain.op_time

    def test_aggregate_group_rows(self, builder):
        scan = builder.scan(R0, [0, 1, 2, 3], TRUE, "node0", A2R)
        agg = builder.aggregate(
            scan, [column("r0", "cat")], [], A2R
        )
        assert agg.rows == pytest.approx(10)

    def test_scalar_aggregate_one_row(self, builder):
        scan = builder.scan(R0, [0], TRUE, "node0", A2R)
        agg = builder.aggregate(scan, [], [], A2R)
        assert agg.rows == 1.0

    def test_sort(self, builder):
        scan = builder.scan(R0, [0], TRUE, "node0", A2R)
        sort = builder.sort(scan, [column("r0", "id")])
        assert isinstance(sort, Sort)
        assert sort.rows == scan.rows

    def test_operator_count_and_leaves(self, builder):
        a = builder.scan(R0, [0], TRUE, "node0", A2R)
        b = builder.scan(R1, [0], TRUE, "node0", A2R)
        join = builder.join(
            a, b, [eq(column("r0", "ref0"), column("r1", "id"))], A2R
        )
        assert join.operator_count() == 3
        assert set(join.leaves()) == {a, b}

    def test_explain_renders(self, builder):
        a = builder.scan(R0, [0], TRUE, "node0", A2R)
        b = builder.scan(R1, [0], TRUE, "node1", A2R)
        join = builder.join(
            a, b, [eq(column("r0", "ref0"), column("r1", "id"))], A2R,
            site="node0",
        )
        text = join.explain()
        assert "HashJoin" in text and "Scan" in text and "Transfer" in text
