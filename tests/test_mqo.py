"""Cross-session MQO: interning, amortization, epochs, equivalence."""

from __future__ import annotations

import pytest

from repro.bench.harness import BUYER, build_world
from repro.broker import (
    AdmissionConfig,
    BrokerService,
    OrderedBiddingProtocol,
    SessionBudget,
)
from repro.mqo import (
    CommodityInterner,
    MQOConfig,
    amortized_offer,
    money_shares,
)
from repro.net import Network
from repro.obs import Tracer
from repro.sql.query import SPJQuery
from repro.trading import BuyerPlanGenerator, QueryTrader
from repro.trading.cache import CacheStats, InternTable, OfferCache
from repro.trading.commodity import offer_id_scope
from repro.workload import (
    BurstConfig,
    OverlapConfig,
    build_bursty_workload,
    build_overlapping_analytics,
    chain_query,
)

#: Single-fragment relations so sellers can sell a shared join interior
#: as one complete materialized intermediate (the MQO-friendly world).
WORLD = dict(
    nodes=8, n_relations=6, rows=10_000, fragments=1, replicas=2, seed=7
)


def make_service(**kwargs) -> BrokerService:
    kwargs.setdefault("world_config", WORLD)
    kwargs.setdefault(
        "admission",
        AdmissionConfig(
            max_concurrent=4,
            queue_limit=64,
            budget=SessionBudget(rounds=6),
        ),
    )
    return BrokerService(**kwargs)


def submit_sql(service: BrokerService, sql: str, **payload):
    return service.submit(service.parse_spec({"sql": sql, **payload}))


def serve_all(service: BrokerService, arrivals):
    sessions = [
        submit_sql(service, a.query.sql(), tenant=a.tenant)
        for a in arrivals
    ]
    assert service.drain(timeout=120.0)
    return sessions


@pytest.fixture(scope="module")
def arrivals():
    return build_overlapping_analytics(
        OverlapConfig(tenants=4, queries_per_tenant=2, seed=7)
    )


# ----------------------------------------------------------------------
# The commodity interner: canonicalization properties
# ----------------------------------------------------------------------
class TestCommodityInterner:
    def test_shared_interior_interned_across_selections(self):
        """Same template, different driving selections -> interior shared."""
        a = chain_query(3, selection_cat=1)
        b = chain_query(3, selection_cat=2)
        shared = CommodityInterner().intern([("s1", a), ("s2", b)])
        assert shared, "the identical join interior was not interned"
        interiors = [
            c for c in shared
            if c.template.aliases == frozenset({"r1", "r2"})
        ]
        assert interiors and list(interiors[0].members) == ["s1", "s2"]
        # The template is exactly both members' canonical subquery.
        template = interiors[0].template
        assert template.key() == a.subquery_on(frozenset({"r1", "r2"})).key()
        assert template.key() == b.subquery_on(frozenset({"r1", "r2"})).key()

    def test_full_query_is_never_a_commodity(self):
        """Even identical full queries intern only proper subqueries."""
        q = chain_query(3, selection_cat=1)
        shared = CommodityInterner().intern([("s1", q), ("s2", q)])
        assert shared
        assert all(
            c.template.aliases != q.aliases for c in shared
        )

    def test_canonical_key_ignores_clause_order(self):
        """Permuted FROM/WHERE order still lands on one commodity."""
        q = chain_query(3, selection_cat=1)
        permuted = SPJQuery(
            relations=tuple(reversed(q.relations)),
            predicate=q.predicate,
            projections=q.projections,
            group_by=q.group_by,
        )
        assert permuted.key() == q.key()
        shared = CommodityInterner().intern([("s1", q), ("s2", permuted)])
        keys = {c.key for c in shared}
        interior = q.subquery_on(frozenset({"r1", "r2"})).key()
        assert interior in keys

    def test_disjoint_templates_do_not_intern(self):
        """Queries over different relation windows share nothing."""
        a = chain_query(2, selection_cat=1, relation_offset=0)
        b = chain_query(2, selection_cat=1, relation_offset=3)
        assert CommodityInterner().intern([("s1", a), ("s2", b)]) == []

    def test_share_threshold(self):
        q = chain_query(3, selection_cat=1)
        assert CommodityInterner().intern([("s1", q)]) == []
        three = CommodityInterner(share_threshold=3)
        assert three.intern([("s1", q), ("s2", q)]) == []
        assert three.intern([("s1", q), ("s2", q), ("s3", q)])


# ----------------------------------------------------------------------
# Split-cost arithmetic
# ----------------------------------------------------------------------
class TestAmortization:
    @pytest.mark.parametrize("k", [1, 2, 3, 5, 7, 16])
    @pytest.mark.parametrize("total", [0.03, 1.0, 0.1234567, 977.001])
    def test_shares_sum_exactly(self, total, k):
        shares = money_shares(total, k)
        assert len(shares) == k
        assert sum(shares) == total  # bit-for-bit, not approximately
        assert all(s > 0 for s in shares)

    def test_amortized_offer_splits_execute_not_ship(self, arrivals):
        """time' = execute/k + ship; money' = the sharer's exact share."""
        world = build_world(**WORLD)
        service = make_service(mqo=MQOConfig(epoch_size=4, epoch_window=5.0))
        try:
            sessions = serve_all(service, arrivals[:4])
            seeded = [s for s in sessions if s.seed_offers]
            assert seeded, "no session received amortized seed offers"
            for session in seeded:
                for offer in session.seed_offers:
                    assert offer.shared_by >= 2
                    assert "shared_by=" in offer.describe()
        finally:
            service.close()
        del world

    def test_amortized_offer_arithmetic(self):
        from dataclasses import replace

        world = build_world(**WORLD)
        cache = world.offer_cache.session_view()
        sellers = world.seller_agents(offer_cache=cache)
        from repro.trading.commodity import RequestForBids

        template = chain_query(2, relation_offset=1)
        rfb = RequestForBids(
            buyer=BUYER, queries=(template,), round_number=0
        )
        with offer_id_scope():
            for node in sorted(sellers):
                offers, _work = sellers[node].prepare_offers(rfb)
                full = [
                    o for o in offers
                    if frozenset(o.coverage) == template.aliases
                ]
                if not full:
                    continue
                offer = full[0]
                shares = money_shares(offer.properties.money, 3)
                seed = amortized_offer(offer, shares[0], 3, 42)
                execute = min(offer.true_cost, offer.properties.total_time)
                ship = offer.properties.total_time - execute
                assert seed.properties.total_time == execute / 3 + ship
                assert seed.properties.money == shares[0]
                assert seed.offer_id == 42 and seed.shared_by == 3
                return
        pytest.fail("no seller produced a full-coverage template offer")


# ----------------------------------------------------------------------
# MQO-off byte-identity: broker == library, any workers, either clock
# ----------------------------------------------------------------------
class TestMQOOffByteIdentity:
    def library_ledger(self, query, workers: int = 1) -> str:
        world = build_world(**WORLD)
        network = Network(world.model)
        network.attach_tracer(Tracer())
        protocol = OrderedBiddingProtocol()
        if workers > 1:
            from repro.parallel import OfferFarm

            protocol.attach_farm(OfferFarm(workers))
        with offer_id_scope():
            trader = QueryTrader(
                BUYER,
                world.seller_agents(
                    offer_cache=world.offer_cache.session_view()
                ),
                network,
                BuyerPlanGenerator(world.builder, BUYER),
                protocol=protocol,
                max_iterations=6,
            )
            result = trader.optimize(query)
        assert result.found and result.ledger is not None
        return result.ledger.to_json()

    def broker_ledger(self, query, **service_kwargs) -> str:
        service = make_service(**service_kwargs)
        try:
            session = submit_sql(service, query.sql())
            assert session.wait(timeout=120.0)
            result = session.result
        finally:
            service.close()
        assert result is not None and result.found
        assert result.ledger is not None
        return result.ledger.to_json()

    @pytest.mark.parametrize("workers", [1, 4])
    def test_mqo_off_broker_matches_library(self, workers, arrivals):
        """MQO-off ledgers are the serial library's, byte for byte —
        at any worker count (the farm's equivalence contract)."""
        query = arrivals[0].query
        expected = self.library_ledger(query)
        assert self.broker_ledger(query, farm_workers=workers) == expected

    def test_farm_inside_offer_id_scope_matches_serial(self, arrivals):
        """Regression: a pool forked inside an ``offer_id_scope``.

        Workers inherit the scope's ContextVar at fork and, uncleared,
        would mint scoped ids instead of creation indices — colliding
        offer ids, unstable ledgers, run-to-run drift.  The worker-side
        reset keeps farm runs byte-identical to serial under a scope.
        """
        query = arrivals[0].query
        serial = self.library_ledger(query)
        farmed = self.library_ledger(query, workers=4)
        assert farmed == serial
        assert self.library_ledger(query, workers=4) == farmed

    def test_disabled_config_is_off(self, arrivals):
        """enabled=False never constructs a scheduler at all."""
        query = arrivals[0].query
        service = make_service(mqo=MQOConfig(enabled=False))
        try:
            assert service.mqo is None
            session = submit_sql(service, query.sql())
            assert session.wait(timeout=120.0)
            ledger = session.result.ledger.to_json()
        finally:
            service.close()
        assert ledger == self.library_ledger(query)

    def test_async_clock_mqo_off_identical(self, arrivals):
        query = arrivals[0].query
        assert self.broker_ledger(query, clock="async") == (
            self.library_ledger(query)
        )

    def test_lone_session_in_mqo_broker_is_unseeded_and_identical(
        self, arrivals
    ):
        """A batch below min_batch dispatches un-seeded: byte-identical."""
        query = arrivals[0].query
        service = make_service(mqo=MQOConfig(epoch_size=8, epoch_window=0.01))
        try:
            session = submit_sql(service, query.sql())
            assert session.wait(timeout=120.0)
            assert session.seed_offers is None and session.epoch is None
            ledger = session.result.ledger.to_json()
        finally:
            service.close()
        assert ledger == self.library_ledger(query)


# ----------------------------------------------------------------------
# The epoch scheduler end to end
# ----------------------------------------------------------------------
class TestEpochScheduler:
    def run_broker(self, arrivals, clock="sim", mqo=None):
        service = make_service(clock=clock, mqo=mqo)
        try:
            sessions = serve_all(service, arrivals)
            results = [s.result for s in sessions]
            assert all(r is not None and r.found for r in results)
            metrics = service.metrics_payload()
            seeds = {
                s.session_id: [o.describe() for o in (s.seed_offers or [])]
                for s in sessions
            }
            plans = sorted(
                (r.best.plan.explain(), r.best.properties.total_time)
                for r in results
            )
        finally:
            service.close()
        return results, metrics, seeds, plans

    def test_sharing_lowers_aggregate_cost_and_payments(self, arrivals):
        base, base_metrics, _, _ = self.run_broker(arrivals)
        mqo, mqo_metrics, seeds, _ = self.run_broker(
            arrivals,
            mqo=MQOConfig(epoch_size=len(arrivals), epoch_window=5.0),
        )
        base_cost = sum(r.best.properties.total_time for r in base)
        mqo_cost = sum(r.best.properties.total_time for r in mqo)
        base_pay = sum(r.total_payment for r in base)
        mqo_pay = sum(r.total_payment for r in mqo)
        assert mqo_cost < base_cost
        assert mqo_pay < base_pay
        assert any(seeds.values())
        assert mqo_metrics["cache"]["intern_hits"] > 0
        assert base_metrics["cache"]["intern_hits"] == 0
        section = mqo_metrics["mqo"]
        assert section["epochs"] >= 1
        assert section["sessions_batched"] == len(arrivals)
        assert section["shared_pricing"]["reconciled"]
        assert section["shared_pricing"]["records"] > 0

    def test_shares_reconcile_exactly(self, arrivals):
        service = make_service(
            mqo=MQOConfig(epoch_size=len(arrivals), epoch_window=5.0)
        )
        try:
            serve_all(service, arrivals)
            ledger = service.mqo.shared_ledger
        finally:
            service.close()
        assert ledger.records and ledger.reconcile()
        for record in ledger.records:
            assert sum(record.shares) == record.full_money
            assert len(record.shares) == len(record.sharers) >= 2

    def test_deterministic_across_clock_backends(self, arrivals):
        """Seeds, shares, and plans are clock-independent."""
        config = MQOConfig(epoch_size=len(arrivals), epoch_window=5.0)
        _, sim_metrics, sim_seeds, sim_plans = self.run_broker(
            arrivals, clock="sim", mqo=config
        )
        _, async_metrics, async_seeds, async_plans = self.run_broker(
            arrivals, clock="async", mqo=config
        )
        assert sim_seeds == async_seeds
        assert sim_plans == async_plans
        assert (
            sim_metrics["mqo"]["shared_pricing"]
            == async_metrics["mqo"]["shared_pricing"]
        )

    def test_bursty_sessions_all_complete_in_epochs(self):
        """Epoch batching never strands bursty, non-overlapping traffic."""
        bursty = build_bursty_workload(
            BurstConfig(
                tenants=2, bursts=2, burst_size=3,
                available_relations=4, seed=11,
            )
        )
        service = make_service(
            mqo=MQOConfig(epoch_size=3, epoch_window=0.05)
        )
        try:
            sessions = serve_all(service, bursty)
            assert all(s.result is not None for s in sessions)
            assert all(s.state == "completed" for s in sessions)
            metrics = service.metrics_payload()["mqo"]
        finally:
            service.close()
        assert metrics["sessions_batched"] == len(bursty)
        assert metrics["epochs"] >= 2
        assert service.mqo.pending() == 0

    def test_close_flushes_pending_sessions(self, arrivals):
        """close() seals the partial epoch; nothing waits forever."""
        service = make_service(
            mqo=MQOConfig(epoch_size=100, epoch_window=3600.0)
        )
        try:
            session = submit_sql(service, arrivals[0].query.sql())
            service.mqo.flush()  # what drain() does
            assert session.wait(timeout=120.0)
            assert session.state == "completed"
        finally:
            service.close()


# ----------------------------------------------------------------------
# Satellite: snapshot_for_site must carry intern provenance
# ----------------------------------------------------------------------
def _key(site: str, tag: str):
    """A structurally-valid cache key (site lives at index 2)."""
    return (f"SELECT {tag}", (), site, None, "dp")


class TestInternSnapshotRegression:
    def test_site_snapshot_shares_the_intern_table(self):
        cache = OfferCache()
        cache.interns = InternTable()
        key = _key("node0", "a")
        cache.store(key, object())
        cache.interns.pin(key, "e1")
        clone = cache.snapshot_for_site("node0")
        # The regression: the clone used to drop ``interns``, so worker
        # hits on epoch-priced keys lost their intern provenance (and
        # the serial-demotion recount disagreed with worker counting).
        assert clone.interns is cache.interns
        assert clone.lookup(key) is not None
        assert clone.stats.intern_hits == 1
        # A stats-delta replay onto the parent carries the field.
        parent = CacheStats()
        parent.add(clone.stats.delta_since(CacheStats()))
        assert parent.intern_hits == 1

    def test_session_view_shares_the_intern_table(self):
        cache = OfferCache()
        cache.interns = InternTable()
        view = cache.session_view()
        assert view.interns is cache.interns

    def test_eviction_spares_interned_entries(self):
        cache = OfferCache(max_entries=2)
        cache.interns = InternTable()
        pinned, other, newcomer = (
            _key("n", "pinned"), _key("n", "other"), _key("n", "new")
        )
        cache.store(pinned, object())
        cache.store(other, object())
        cache.interns.pin(pinned, "e1")
        cache.store(newcomer, object())  # evicts `other`, not `pinned`
        assert cache.lookup(pinned) is not None
        assert cache.lookup(newcomer) is not None
        assert cache.lookup(other) is None

    def test_eviction_without_interns_is_fifo(self):
        cache = OfferCache(max_entries=2)
        first, second, third = (
            _key("n", "1"), _key("n", "2"), _key("n", "3")
        )
        cache.store(first, object())
        cache.store(second, object())
        cache.store(third, object())
        assert cache.lookup(first) is None
        assert cache.lookup(second) is not None

    def test_intern_hits_zero_without_table(self):
        cache = OfferCache()
        key = _key("n", "x")
        cache.store(key, object())
        assert cache.lookup(key) is not None
        assert cache.stats.hits == 1 and cache.stats.intern_hits == 0
