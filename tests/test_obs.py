"""Tier-1 coverage of the observability layer (repro.obs).

Pins the three contracts ``docs/OBSERVABILITY.md`` promises:

* **zero perturbation** — attaching a tracer (enabled or disabled)
  changes no field of the trading result, across the E1–E3 experiment
  axes (query size, federation size, generator mode);
* **determinism** — the deterministic JSONL export of a traced run is
  byte-identical between ``workers=1`` and ``workers=4``;
* **fidelity** — the recorded events reconcile exactly with the
  independent counters the system already keeps (``NetworkStats``,
  ``CacheStats``, the fault injector's log).
"""

import itertools
import json

import pytest

import repro.trading.commodity as commodity
from repro.bench.harness import build_world, run_qt, run_qt_faulty
from repro.faults import FaultPlan, LinkFaults
from repro.net import MessageKind, Network
from repro.net.simulator import Simulator
from repro.obs import (
    CAT_PARALLEL,
    NULL_TRACER,
    MetricsRegistry,
    RunTelemetry,
    Tracer,
    chrome_trace_events,
    jsonl_lines,
    load_trace,
    render_report,
    render_timeline,
    summarize,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.tracer import NO_PARENT
from repro.trading import OfferCache
from repro.workload import chain_query


# ----------------------------------------------------------------------
# Tracer core
# ----------------------------------------------------------------------
class _FakeSim:
    def __init__(self, now=0.0):
        self.now = now


def test_span_nesting_parents():
    tracer = Tracer(sim=_FakeSim())
    with tracer.span("outer", "t") as outer:
        tracer.event("inside", "t")
        with tracer.span("inner", "t"):
            tracer.gauge("depth", 2)
    outer_rec, inside, inner, gauge = tracer.records
    assert outer_rec.parent_id == NO_PARENT
    assert inside.parent_id == outer_rec.span_id
    assert inner.parent_id == outer_rec.span_id
    assert gauge.parent_id == inner.span_id
    assert gauge.args == {"value": 2}
    outer.set(offers=3)
    assert outer_rec.args == {"offers": 3}


def test_span_tracks_sim_clock():
    sim = _FakeSim(1.0)
    tracer = Tracer(sim=sim)
    with tracer.span("work", "t"):
        sim.now = 3.5
    record = tracer.records[0]
    assert record.sim_start == 1.0
    assert record.sim_end == 3.5
    assert record.sim_duration == 2.5


def test_disabled_tracer_records_nothing():
    tracer = Tracer(enabled=False)
    with tracer.span("x", "t") as span:
        span.set(a=1)  # no-op span accepts set()
        tracer.event("y", "t")
        tracer.gauge("z", 1)
        tracer.interval("w", "t", "site", 0.0, 1.0)
    assert tracer.records == []
    assert NULL_TRACER.records == []


def test_unbound_tracer_stamps_zero_sim_time():
    tracer = Tracer()
    tracer.event("e", "t")
    assert tracer.records[0].sim_start == 0.0


def test_absorb_restamps_worker_records():
    worker = Tracer()  # unbound, as in a pool worker
    with worker.span("prepare", "trading", site="node1"):
        worker.event("cache.miss", "cache", site="node1")
    parent = Tracer(sim=_FakeSim(7.0))
    with parent.span("solicit", "trading") as _sp:
        parent.absorb(worker.records)
    solicit, prepare, miss = parent.records
    assert prepare.sim_start == 7.0 and miss.sim_start == 7.0
    assert prepare.parent_id == solicit.span_id  # remapped to open span
    assert miss.parent_id == prepare.span_id  # internal structure kept
    assert [r.seq for r in parent.records] == [0, 1, 2]


# ----------------------------------------------------------------------
# Simulator accessor (satellite: accurate pending_events)
# ----------------------------------------------------------------------
def test_pending_events_excludes_cancelled_timers():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    handle = sim.schedule_cancellable(2.0, lambda: None)
    sim.schedule_cancellable(3.0, lambda: None)
    assert sim.pending_events() == 3
    handle.cancel()
    assert sim.pending_events() == 2  # lazily-deleted entry not counted
    assert sim.pending == 2


# ----------------------------------------------------------------------
# NetworkStats.by_type (satellite)
# ----------------------------------------------------------------------
def test_by_type_mirrors_by_kind_and_sums_to_total():
    world = build_world(nodes=6, n_relations=3, seed=7)
    from repro.net.messages import Message

    stats = Network(world.model).stats
    stats.record(Message(MessageKind.RFB, "a", "b"), 100)
    stats.record(Message(MessageKind.RFB, "a", "c"), 100)
    stats.record(Message(MessageKind.OFFER, "b", "a"), 300)
    assert stats.by_type == {"rfb": 2, "offer": 1}
    assert stats.by_type["no_offer"] == 0  # Counter: absent kinds read 0
    assert sum(stats.by_type.values()) == stats.messages
    assert stats.describe_types() == "offer=1 rfb=2"


# ----------------------------------------------------------------------
# Zero-perturbation across the E1–E3 axes
# ----------------------------------------------------------------------
_SIGNATURE_FIELDS = (
    "found", "plan_cost", "optimization_time", "messages", "iterations",
    "offers", "payments", "cache_hits", "cache_misses", "plan_explain",
)


def _signature(measurement):
    return tuple(getattr(measurement, f) for f in _SIGNATURE_FIELDS)


@pytest.mark.parametrize(
    "joins,nodes,mode",
    [(2, 6, "dp"), (3, 8, "dp"), (3, 8, "idp"), (4, 10, "dp")],
)
def test_tracer_does_not_perturb_results(joins, nodes, mode):
    query = chain_query(joins)

    def run(tracer):
        commodity._offer_ids = itertools.count(1)
        world = build_world(nodes=nodes, n_relations=max(joins, 3), seed=7)
        return _signature(
            run_qt(world, query, mode=mode, offer_cache=OfferCache(),
                   tracer=tracer)
        )

    baseline = run(None)
    assert run(Tracer(enabled=False)) == baseline
    assert run(Tracer()) == baseline


def test_disabled_tracer_leaves_telemetry_unset():
    world = build_world(nodes=6, n_relations=3, seed=7)
    network = Network(world.model)
    network.attach_tracer(Tracer(enabled=False))
    from repro.trading import BuyerPlanGenerator, QueryTrader

    trader = QueryTrader(
        "client", world.seller_agents(), network,
        BuyerPlanGenerator(world.builder, "client"),
    )
    result = trader.optimize(chain_query(3))
    assert result.found
    assert result.telemetry is None


# ----------------------------------------------------------------------
# Deterministic export: serial vs parallel byte-identity
# ----------------------------------------------------------------------
def _traced_jsonl(workers: int) -> str:
    commodity._offer_ids = itertools.count(1)
    world = build_world(nodes=8, n_relations=4, fragments=3, seed=7)
    tracer = Tracer()
    m = run_qt(world, chain_query(3), workers=workers,
               offer_cache=OfferCache(), tracer=tracer)
    assert m.found
    return "\n".join(jsonl_lines(tracer.records))


def test_jsonl_byte_identical_serial_vs_parallel():
    assert _traced_jsonl(1) == _traced_jsonl(4)


def test_deterministic_export_drops_parallel_and_wall_fields():
    tracer = Tracer(sim=_FakeSim())
    tracer.event("farm.prepared", CAT_PARALLEL, sellers=3)
    with tracer.span("round", "trading"):
        pass
    lines = list(jsonl_lines(tracer.records))
    assert len(lines) == 1  # parallel-category row filtered out
    row = json.loads(lines[0])
    assert row["name"] == "round"
    assert row["seq"] == 0  # re-sequenced after the filter
    assert "wall_start" not in row and "wall_ms" not in row


# ----------------------------------------------------------------------
# Telemetry fidelity
# ----------------------------------------------------------------------
def test_telemetry_reconciles_with_network_and_cache_stats():
    world = build_world(nodes=8, n_relations=4, seed=7)
    tracer = Tracer()
    cache = OfferCache()
    m = run_qt(world, chain_query(3), offer_cache=cache, tracer=tracer)
    assert m.found
    telemetry = [r for r in tracer.records if r.name == "trade.optimize"]
    assert len(telemetry) == 1

    metrics = MetricsRegistry.from_records(tracer.records)
    assert metrics.total("messages_total") == m.messages
    assert metrics.total("cache_total") == m.cache_hits + m.cache_misses
    assert (
        sum(v for k, v in metrics.series("cache_total").items()
            if ("outcome", "hit") in k)
        == m.cache_hits
    )
    # spans land in the phase histogram with fixed buckets
    hist = metrics.histogram("phase_sim_seconds", phase="trade.round")
    assert hist is not None and hist.count == m.iterations


def test_run_telemetry_attached_to_result():
    world = build_world(nodes=8, n_relations=4, seed=7)
    network = Network(world.model)
    tracer = Tracer()
    network.attach_tracer(tracer)
    from repro.trading import BuyerPlanGenerator, QueryTrader

    trader = QueryTrader(
        "client", world.seller_agents(), network,
        BuyerPlanGenerator(world.builder, "client"),
    )
    result = trader.optimize(chain_query(3))
    assert result.found
    telemetry = result.telemetry
    assert isinstance(telemetry, RunTelemetry)
    assert telemetry.spans > 0 and telemetry.events > 0
    assert telemetry.metrics.total("messages_total") == result.messages.messages
    rates = telemetry.cache_hit_rate_by_site
    assert rates and all(0.0 <= rate <= 1.0 for rate in rates.values())
    dumped = json.dumps(telemetry.to_dict(), sort_keys=True)
    assert json.loads(dumped)["spans"] == telemetry.spans


def test_faulty_run_emits_fault_events():
    world = build_world(nodes=8, n_relations=4, seed=7)
    plan = FaultPlan(
        default_link=LinkFaults(
            drop_rate=0.15, duplicate_rate=0.1,
            delay_spike_rate=0.1, delay_spike_seconds=0.2,
        ),
        seed=11,
    )
    tracer = Tracer()
    m = run_qt_faulty(world, chain_query(3), plan, tracer=tracer)
    drops = [r for r in tracer.records if r.name == "fault.drop"]
    dups = [r for r in tracer.records if r.name == "fault.duplicate"]
    assert len(drops) == m.dropped
    assert len(dups) == m.duplicated
    assert all(r.args["reason"] in
               ("link", "sender_down", "recipient_down") for r in drops)
    metrics = MetricsRegistry.from_records(tracer.records)
    assert metrics.total("faults_total") == len(drops) + len(dups) + sum(
        1 for r in tracer.records if r.name == "fault.delay_spike"
    )


# ----------------------------------------------------------------------
# Metrics registry unit behavior
# ----------------------------------------------------------------------
def test_metrics_registry_basics():
    registry = MetricsRegistry()
    registry.inc("hits", site="b")
    registry.inc("hits", site="a", amount=2)
    assert registry.counter("hits", site="a") == 2
    assert registry.total("hits") == 3
    registry.add("seconds", 1.5, site="a")
    registry.add("seconds", 0.5, site="a")
    assert registry.sum_of("seconds", site="a") == 2.0
    registry.gauge_set("queue", 5)
    registry.gauge_set("queue", 3)
    assert registry.gauge("queue") == (3, 5)  # last, max
    registry.observe("latency", 0.002)
    registry.observe("latency", 99.0)  # beyond last boundary -> +inf bucket
    hist = registry.histogram("latency")
    assert hist.count == 2 and hist.counts[-1] == 1
    out = registry.to_dict()
    assert list(out["counters"]["hits"]) == ["site=a", "site=b"]  # sorted


def test_histogram_boundary_values_are_le_inclusive():
    # Prometheus `le` semantics: a value exactly on a bucket boundary
    # belongs to that bucket, not the next one.
    registry = MetricsRegistry()
    registry.observe("x", 0.1, boundaries=(0.1, 1.0))
    hist = registry.histogram("x")
    assert hist.counts == [1, 0, 0]
    registry.observe("x", 1.0, boundaries=(0.1, 1.0))
    assert hist.counts == [1, 1, 0]


def test_histogram_plus_inf_bucket_accounting():
    registry = MetricsRegistry()
    boundaries = (0.5, 2.0)
    for value in (0.1, 1.0, 100.0, 2.0000001):
        registry.observe("x", value, boundaries=boundaries)
    hist = registry.histogram("x")
    assert hist.counts == [1, 1, 2]  # two beyond the last boundary
    assert hist.count == sum(hist.counts)
    assert hist.sum == pytest.approx(103.1000001)
    dumped = hist.to_dict()
    assert len(dumped["counts"]) == len(dumped["boundaries"]) + 1


def test_histogram_label_order_is_canonical():
    # The same label set in any keyword order is one series, and
    # rendered rows sort keys alphabetically.
    registry = MetricsRegistry()
    registry.observe("x", 0.1, site="a", phase="p")
    registry.observe("x", 0.2, phase="p", site="a")
    assert registry.histogram("x", phase="p", site="a").count == 2
    out = registry.to_dict()
    assert list(out["histograms"]["x"]) == ["phase=p,site=a"]


def test_bench_envelope_tolerates_no_git(monkeypatch):
    import subprocess as subprocess_module

    from repro.obs import history as history_module

    def no_git(*args, **kwargs):
        raise FileNotFoundError("git not installed")

    monkeypatch.setattr(history_module.subprocess, "run", no_git)
    monkeypatch.delenv("GITHUB_SHA", raising=False)
    envelope = history_module.run_envelope()
    assert envelope["git_sha"] is None  # null, not an exception
    # The CI fallback still wins when the environment provides it.
    monkeypatch.setenv("GITHUB_SHA", "abcdef1234567890")
    assert history_module.run_envelope()["git_sha"] == "abcdef123456"
    # A subprocess-layer failure (e.g. timeout) degrades the same way.
    def hangs(*args, **kwargs):
        raise subprocess_module.TimeoutExpired(cmd="git", timeout=5)

    monkeypatch.setattr(history_module.subprocess, "run", hangs)
    monkeypatch.delenv("GITHUB_SHA", raising=False)
    assert history_module.run_envelope()["git_sha"] is None


# ----------------------------------------------------------------------
# Exporters and report
# ----------------------------------------------------------------------
def _small_trace() -> Tracer:
    world = build_world(nodes=6, n_relations=3, seed=7)
    tracer = Tracer()
    m = run_qt(world, chain_query(3), offer_cache=OfferCache(), tracer=tracer)
    assert m.found
    return tracer


def test_chrome_export_roundtrip(tmp_path):
    tracer = _small_trace()
    path = tmp_path / "trace.json"
    write_chrome_trace(tracer.records, str(path))
    data = json.loads(path.read_text())
    assert data["traceEvents"]
    phases = {e["ph"] for e in data["traceEvents"]}
    assert {"X", "i", "M"} <= phases
    rows = load_trace(str(path))
    assert sum(1 for r in rows if r["kind"] == "span") == sum(
        1 for r in tracer.records if r.kind == "span"
    )


def test_jsonl_export_roundtrip_and_report(tmp_path):
    tracer = _small_trace()
    path = tmp_path / "trace.jsonl"
    write_jsonl(tracer.records, str(path))
    rows = load_trace(str(path))
    assert rows
    summary = summarize(rows)
    assert summary["messages"]["rfb"]["count"] > 0
    assert "trade.optimize" in summary["phases"]
    report = render_report(rows, top=3)
    assert "phases (by total simulated time):" in report
    assert "messages by type:" in report
    assert "offer cache by site:" in report


def test_render_timeline_has_site_lanes():
    tracer = _small_trace()
    art = render_timeline(tracer.records)
    assert "client" in art and "node0" in art
    assert "round start" in art or "|" in art


def test_chrome_events_carry_wall_ms():
    tracer = _small_trace()
    events = chrome_trace_events(tracer.records)
    spans = [e for e in events if e["ph"] == "X"]
    assert spans and all("wall_ms" in e["args"] for e in spans)


# ----------------------------------------------------------------------
# CLI integration
# ----------------------------------------------------------------------
def test_cli_trade_trace_and_report(tmp_path, capsys):
    from repro.cli import main

    trace_path = tmp_path / "out.jsonl"
    code = main([
        "trade", "SELECT * FROM R0 r0, R1 r1 WHERE r0.id = r1.ref0",
        "--nodes", "6", "--relations", "3",
        "--trace", str(trace_path), "--timeline",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "messages by type:" in out
    assert "negotiation timeline" in out
    assert trace_path.exists()
    assert main(["report", str(trace_path), "--top", "3"]) == 0
    assert "slowest spans" in capsys.readouterr().out
