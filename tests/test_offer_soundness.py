"""Offer soundness: what a seller promises is what its query delivers.

Two invariants for every offer any seller produces:

1. **Coverage/predicate agreement** — the offered query's own predicate
   already pins it to exactly the declared fragment coverage: evaluating
   it over the *whole* federation yields the same answer as evaluating it
   restricted to the declared coverage.  (The union-of-overlapping-ranges
   bug this guards against produced offers whose declared coverage was
   provably empty.)

2. **Partition exactness** — for the requested query, the multiset union
   of single-relation offers over a disjoint fragment cover equals the
   relation's full (selected) content: nothing lost, nothing duplicated.
"""

import pytest

from repro.execution import FederationData, evaluate_query
from repro.trading import RequestForBids, SellerAgent
from repro.workload import chain_query, star_query
from tests.conftest import make_federation


def world_offers(seed, query, fragments=3, replicas=2):
    catalog, nodes, estimator, model, builder = make_federation(
        nodes=6, n_relations=4, rows=180, fragments=fragments,
        replicas=replicas, seed=seed,
    )
    data = FederationData.build(catalog, seed=seed)
    offers = []
    for node in nodes:
        if node == "client":
            continue
        agent = SellerAgent(catalog.local(node), builder)
        got, _ = agent.prepare_offers(RequestForBids("client", (query,)))
        offers.extend(got)
    return catalog, data, offers


QUERIES = [
    chain_query(1, selection_cat=2),
    chain_query(2, selection_cat=1),
    chain_query(3),
    chain_query(2, aggregate=True),
    star_query(2, selection_cat=3),
]


class TestCoveragePredicateAgreement:
    @pytest.mark.parametrize("seed", [3, 11])
    @pytest.mark.parametrize("query", QUERIES, ids=lambda q: q.sql()[:45])
    def test_offer_query_pins_its_coverage(self, seed, query):
        catalog, data, offers = world_offers(seed, query)
        assert offers
        for offer in offers:
            unrestricted = evaluate_query(offer.query, data)
            restricted = evaluate_query(
                offer.query,
                data,
                coverage={
                    alias: frozenset(fids)
                    for alias, fids in offer.coverage.items()
                },
            )
            assert unrestricted.equals_unordered(restricted), (
                offer.describe(),
                offer.query.sql(),
            )

    @pytest.mark.parametrize("seed", [3, 11])
    def test_no_provably_empty_offers_with_claimed_coverage(self, seed):
        """An offer claiming non-empty coverage whose answer is empty for
        structural (not data) reasons indicates the rewrite lied."""
        query = chain_query(1, selection_cat=2)
        catalog, data, offers = world_offers(seed, query)
        for offer in offers:
            if offer.aliases != frozenset({"r0"}):
                continue
            from repro.sql.expr import satisfiable

            assert satisfiable(offer.query.predicate), offer.query.sql()


class TestPartitionExactness:
    @pytest.mark.parametrize("seed", [5, 9])
    def test_disjoint_cover_unions_to_full_relation(self, seed):
        query = chain_query(2, selection_cat=4)
        catalog, data, offers = world_offers(seed, query)
        scheme = catalog.scheme("R0")
        # assemble any disjoint cover of r0 from single-relation offers
        singles = sorted(
            (o for o in offers if set(o.coverage) == {"r0"}),
            key=lambda o: -len(o.coverage["r0"]),
        )
        chosen = []
        covered: frozenset[int] = frozenset()
        for offer in singles:
            fids = frozenset(offer.coverage["r0"])
            if fids & covered:
                continue
            chosen.append(offer)
            covered |= fids
            if covered == scheme.fragment_ids:
                break
        assert covered == scheme.fragment_ids, "offers cannot cover r0"
        union_rows: list = []
        for offer in chosen:
            part = evaluate_query(offer.query, data)
            union_rows.extend(part.canonical())
        reference = evaluate_query(query.subquery_on(["r0"]), data)
        assert sorted(union_rows, key=repr) == sorted(
            reference.canonical(), key=repr
        )
