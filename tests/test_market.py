"""Tests for market-based load balancing across repeated trades."""

import pytest

from repro.cost import NodeCapabilities
from repro.net import Network
from repro.trading import BuyerPlanGenerator, Marketplace, QueryTrader, SellerAgent
from repro.workload import chain_query
from tests.conftest import make_federation


def build_marketplace(replicas=3, **market_kwargs):
    catalog, nodes, estimator, model, builder = make_federation(
        nodes=6, n_relations=1, rows=8_000, fragments=2, replicas=replicas,
        seed=13,
    )
    # slow IO so execution work (and therefore load feedback) matters
    for node in nodes:
        builder.capabilities[node] = NodeCapabilities(
            cpu_rate=5e5, io_rate=5e4
        )
    network = Network(model)
    sellers = {
        node: SellerAgent(catalog.local(node), builder)
        for node in nodes
        if node != "client"
    }
    trader = QueryTrader(
        "client", sellers, network, BuyerPlanGenerator(builder, "client")
    )
    return catalog, Marketplace(trader, **market_kwargs)


class TestLoadFeedback:
    def test_winning_raises_load(self):
        catalog, market = build_marketplace()
        result = market.trade(chain_query(1))
        assert result.found
        winners = {c.seller for c in result.contracts}
        loads = market.loads()
        assert all(loads[node] > 0 for node in winners)

    def test_contract_counts_tracked(self):
        catalog, market = build_marketplace()
        results = market.trade_many(chain_query(1), 3)
        assert all(r.found for r in results)
        total = sum(market.contract_counts.values())
        assert total == sum(len(r.contracts) for r in results)

    def test_load_drains_over_time(self):
        catalog, market = build_marketplace(drain_rate=1e6)
        market.trade(chain_query(1))
        market.trade(chain_query(1))  # drain happens before the 2nd trade
        # with an enormous drain rate the 2nd trade starts from ~idle
        # loads; after it only the 2nd round's winners carry load
        loaded = {n for n, l in market.loads().items() if l > 0}
        assert loaded  # winners of the latest trade

    def test_winners_rotate_under_load(self):
        """Market-based load balancing: with replicas available, hammering
        the same query spreads contracts across more sellers than a
        feedback-free market would use."""
        catalog, market = build_marketplace(load_per_second=200.0,
                                            drain_rate=0.0)
        results = market.trade_many(chain_query(1), 6)
        assert all(r.found for r in results)
        sellers_used = set(market.contract_counts)
        # feedback-free baseline: same trader, no booking
        catalog2, market2 = build_marketplace(load_per_second=0.0,
                                              drain_rate=0.0)
        for _ in range(6):
            market2.trade(chain_query(1))
        assert len(sellers_used) >= len(set(market2.contract_counts))

    def test_failed_trade_books_nothing(self):
        catalog, market = build_marketplace()
        # an unanswerable query: strip the market
        market.trader.sellers = {}
        result = market.trade(chain_query(1))
        assert not result.found
        assert market.contract_counts == {}
