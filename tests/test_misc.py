"""Remaining edge paths: DNF caps, valuation monotonicity, award corner
cases, simulator ordering property."""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.net import Network, Simulator
from repro.sql import column, in_list
from repro.sql.expr import (
    InList,
    Not,
    Or,
    _dnf,
    eq,
    ge,
    lt,
    satisfiable,
)
from repro.trading import AnswerProperties, WeightedValuation
from repro.trading.protocols import BiddingProtocol
from repro.cost import CostModel


C = column("t", "a")


class TestDnf:
    def test_cap_exceeded_returns_none(self):
        wide = Or(tuple(eq(C, i) for i in range(20)))
        deep = wide
        for _ in range(3):
            deep = deep & wide
        assert _dnf(deep, cap=64) is None
        # satisfiable degrades gracefully (assumes satisfiable)
        assert satisfiable(deep)

    def test_not_treated_as_atom(self):
        pred = Not(in_list(C, [1, 2]))
        disjuncts = _dnf(pred)
        assert disjuncts is not None
        assert satisfiable(pred)

    def test_empty_or(self):
        from repro.sql.expr import FALSE

        assert _dnf(FALSE) == []
        assert not satisfiable(FALSE)


class TestValuationMonotonicity:
    @given(
        t=st.floats(0, 100),
        extra=st.floats(0.001, 50),
        money=st.floats(0, 100),
    )
    @settings(max_examples=100, deadline=None)
    def test_more_time_never_cheaper(self, t, extra, money):
        v = WeightedValuation(money_weight=0.5)
        a = AnswerProperties(total_time=t, rows=1, money=money)
        b = AnswerProperties(total_time=t + extra, rows=1, money=money)
        assert v(b) >= v(a)

    @given(f=st.floats(0, 1), g=st.floats(0, 1))
    @settings(max_examples=100, deadline=None)
    def test_staleness_penalty_ordering(self, f, g):
        v = WeightedValuation(staleness_penalty=5.0)
        a = AnswerProperties(total_time=1, rows=1, freshness=f)
        b = AnswerProperties(total_time=1, rows=1, freshness=g)
        if f > g:
            assert v(a) <= v(b)


class TestAwardCorners:
    def test_award_with_no_winners(self, telecom):
        from repro.cost import CardinalityEstimator
        from repro.optimizer import PlanBuilder
        from repro.trading import RequestForBids, SellerAgent

        estimator = CardinalityEstimator(
            telecom.stats, telecom.catalog.schemas
        )
        builder = PlanBuilder(
            estimator, CostModel(), schemes=telecom.catalog.schemes
        )
        network = Network(CostModel())
        sellers = {
            node: SellerAgent(telecom.catalog.local(node), builder)
            for node in telecom.nodes
        }
        protocol = BiddingProtocol()
        result = protocol.solicit(
            network, "buyer", sellers,
            RequestForBids("buyer", (telecom.manager_query(),)),
        )
        final = protocol.award(network, "buyer", [], result.offers, sellers)
        assert final == []
        # every offering seller got a rejection
        from repro.net import MessageKind

        rejected = network.stats.count(MessageKind.REJECT)
        assert rejected == len({o.seller for o in result.offers})


class TestSimulatorOrderingProperty:
    @given(
        delays=st.lists(
            st.floats(min_value=0.0, max_value=100.0), min_size=1,
            max_size=30,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_events_observed_in_nondecreasing_time(self, delays):
        sim = Simulator()
        observed = []
        for delay in delays:
            sim.schedule(delay, lambda: observed.append(sim.now))
        sim.run_until_idle()
        assert observed == sorted(observed)
        assert len(observed) == len(delays)


class TestNetworkBytes:
    def test_bytes_accumulate(self):
        from repro.net import Message, MessageKind

        net = Network(CostModel())
        net.register("a", lambda n, m: None)
        net.register("b", lambda n, m: None)
        net.send(Message(MessageKind.DATA, "a", "b", None, size_bytes=100))
        net.send(Message(MessageKind.DATA, "a", "b", None, size_bytes=50))
        net.run()
        assert net.stats.bytes == 150
