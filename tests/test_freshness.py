"""Tests for the freshness dimension of offers and valuations."""

import pytest

from repro.cost import CardinalityEstimator, CostModel
from repro.net import Network
from repro.optimizer import PlanBuilder
from repro.trading import (
    BuyerPlanGenerator,
    QueryTrader,
    RequestForBids,
    SellerAgent,
    WeightedValuation,
)
from repro.workload import chain_query
from tests.conftest import make_federation


@pytest.fixture(scope="module")
def world():
    return make_federation(nodes=6, n_relations=1, rows=2_000, fragments=2,
                           replicas=3, seed=17)


def build_market(world, stale_nodes, freshness=0.5):
    catalog, nodes, estimator, model, builder = world
    network = Network(model)
    sellers = {
        node: SellerAgent(
            catalog.local(node),
            builder,
            freshness=freshness if node in stale_nodes else 1.0,
        )
        for node in nodes
        if node != "client"
    }
    return network, sellers, builder


class TestFreshnessFlows:
    def test_offers_carry_seller_freshness(self, world):
        catalog, nodes, estimator, model, builder = world
        holder = next(iter(catalog.holders("R0", 0)))
        agent = SellerAgent(catalog.local(holder), builder, freshness=0.7)
        offers, _ = agent.prepare_offers(
            RequestForBids("client", (chain_query(1),))
        )
        assert offers
        assert all(o.properties.freshness == 0.7 for o in offers)

    def test_invalid_freshness_rejected(self, world):
        catalog, nodes, estimator, model, builder = world
        with pytest.raises(ValueError):
            SellerAgent(catalog.local("node0"), builder, freshness=1.5)

    def test_view_freshness_validation(self):
        from repro.sql import RelationRef, SPJQuery
        from repro.sql.views import MaterializedView

        with pytest.raises(ValueError):
            MaterializedView(
                "v",
                SPJQuery(relations=(RelationRef.of("R0", "r"),)),
                row_count=1,
                freshness=2.0,
            )


class TestStalenessAverseBuyer:
    def _winners(self, world, valuation):
        catalog, nodes, *_ = world
        # make every data holder except one stale
        holders = sorted(
            {n for _, _, hs in catalog.placements() for n in hs}
        )
        fresh_node = holders[0]
        stale = set(holders) - {fresh_node}
        network, sellers, builder = build_market(world, stale)
        trader = QueryTrader(
            "client",
            sellers,
            network,
            BuyerPlanGenerator(builder, "client", valuation=valuation),
            valuation=valuation,
        )
        result = trader.optimize(chain_query(1))
        assert result.found
        return fresh_node, {c.seller for c in result.contracts}, result

    def test_indifferent_buyer_ignores_staleness(self, world):
        _, winners, _ = self._winners(world, WeightedValuation())
        assert winners  # any seller acceptable

    def test_averse_buyer_prefers_fresh_data(self, world):
        fresh_node, winners, result = self._winners(
            world, WeightedValuation(staleness_penalty=100.0)
        )
        # the only fully fresh holder wins whatever it can supply
        assert fresh_node in winners
        for contract in result.contracts:
            if contract.seller == fresh_node:
                assert contract.agreed.freshness == 1.0
