"""Live serving observability: sketches, registries, q-error, Prometheus.

The determinism contract under test: with live observability enabled,
the SiteStatsRegistry and q-error snapshots are byte-identical across
repeated same-seed broker runs and across the Simulator vs AsyncClock,
at the default worker count — session completion interleaving must not
leak into the deterministic surfaces.
"""

from __future__ import annotations

import json

import pytest

from repro.broker import BrokerService, Router
from repro.obs.live import (
    EventRing,
    LiveObsConfig,
    PromParseError,
    QErrorObservatory,
    QuantileSketch,
    SiteStatsRegistry,
    SLOConfig,
    SLOTracker,
    parse_prometheus_text,
)
from repro.obs.live.qerror import qerror
from repro.workload import BurstConfig, build_bursty_workload

WORLD = dict(nodes=4, n_relations=3, rows=1_000, fragments=2, replicas=1, seed=7)


def _arrivals():
    return build_bursty_workload(BurstConfig(
        tenants=2, bursts=2, burst_size=3, available_relations=3, seed=11
    ))


def _run_broker(clock: str) -> tuple[str, BrokerService]:
    """One drained live-obs broker run; returns (snapshot json, service).

    The caller owns closing the service.
    """
    service = BrokerService(
        world_config=WORLD,
        clock=clock,
        live_obs=LiveObsConfig(qerror_sample_every=2),
    )
    for arrival in _arrivals():
        service.submit(service.parse_spec(
            {"sql": arrival.query.sql(), "tenant": arrival.tenant}
        ))
    assert service.drain(timeout=120.0)
    return json.dumps(service.live.snapshot(), sort_keys=True), service


@pytest.fixture(scope="module")
def broker_runs():
    """Snapshots of two sim runs and one async run, plus a live service."""
    snap_sim_a, service_a = _run_broker("sim")
    service_a.close()
    snap_sim_b, service_b = _run_broker("sim")
    service_b.close()
    snap_async, service = _run_broker("async")
    yield {"sim_a": snap_sim_a, "sim_b": snap_sim_b, "async": snap_async,
           "service": service}
    service.close()


# ----------------------------------------------------------------------
class TestQuantileSketch:
    def test_order_independent_bytes(self):
        values = [0.003, 1.7, 0.5, 0.003, 42.0, 1e-12, 0.25, 7.5]
        forward, backward = QuantileSketch(), QuantileSketch()
        for v in values:
            forward.add(v)
        for v in reversed(values):
            backward.add(v)
        assert json.dumps(forward.to_dict()) == json.dumps(backward.to_dict())

    def test_merge_determinism_and_associativity(self):
        # Merging per-shard sketches in any order yields the same bytes
        # as one sketch fed everything.
        shards = [[0.01, 0.02], [5.0, 0.5, 0.01], [100.0]]
        combined = QuantileSketch()
        for shard in shards:
            for v in shard:
                combined.add(v)
        ab_then_c, c_then_ab = QuantileSketch(), QuantileSketch()
        parts = []
        for shard in shards:
            sketch = QuantileSketch()
            for v in shard:
                sketch.add(v)
            parts.append(sketch)
        ab_then_c.merge(parts[0]); ab_then_c.merge(parts[1]); ab_then_c.merge(parts[2])
        c_then_ab.merge(parts[2]); c_then_ab.merge(parts[0]); c_then_ab.merge(parts[1])
        expected = json.dumps(combined.to_dict())
        assert json.dumps(ab_then_c.to_dict()) == expected
        assert json.dumps(c_then_ab.to_dict()) == expected

    def test_quantile_relative_error(self):
        sketch = QuantileSketch()
        for i in range(1, 101):
            sketch.add(i / 10.0)
        median = sketch.quantile(0.5)
        assert median == pytest.approx(5.0, rel=0.06)  # GAMMA - 1 = 5%
        assert sketch.quantile(1.0) == pytest.approx(10.0, rel=0.06)

    def test_exact_integer_sum_and_stats(self):
        sketch = QuantileSketch()
        for _ in range(10):
            sketch.add(0.1)  # float-sum would drift; integer units do not
        assert sketch.sum == 1.0
        assert sketch.mean == 0.1
        assert sketch.min == 0.1 and sketch.max == 0.1

    def test_negative_values_clamp_to_zero(self):
        sketch = QuantileSketch()
        sketch.add(-5.0)
        assert sketch.count == 1
        assert sketch.min == 0.0
        assert sketch.quantile(0.5) <= 1e-9

    def test_roundtrip_is_byte_identical(self):
        sketch = QuantileSketch()
        for v in (0.001, 2.5, 17.0, 0.33):
            sketch.add(v)
        restored = QuantileSketch.from_dict(sketch.to_dict())
        assert json.dumps(restored.to_dict(), sort_keys=True) == json.dumps(
            sketch.to_dict(), sort_keys=True
        )

    def test_empty_sketch(self):
        sketch = QuantileSketch()
        assert sketch.quantile(0.5) == 0.0
        assert sketch.mean == 0.0
        restored = QuantileSketch.from_dict(sketch.to_dict())
        assert restored.count == 0


# ----------------------------------------------------------------------
class TestRegistryDeterminism:
    def test_same_seed_runs_byte_identical(self, broker_runs):
        assert broker_runs["sim_a"] == broker_runs["sim_b"]

    def test_sim_vs_async_byte_identical(self, broker_runs):
        assert broker_runs["sim_a"] == broker_runs["async"]

    def test_snapshot_restore_roundtrip(self, broker_runs):
        service = broker_runs["service"]
        snapshot = service.live.registry.snapshot()
        restored = SiteStatsRegistry.from_snapshot(snapshot)
        assert json.dumps(restored.snapshot(), sort_keys=True) == json.dumps(
            snapshot, sort_keys=True
        )

    def test_registry_observes_all_sessions(self, broker_runs):
        snapshot = json.loads(broker_runs["sim_a"])
        sites = snapshot["sites"]
        assert sites["sessions"] == len(_arrivals())
        assert sites["rounds"] > 0
        assert sites["rfb_fanout"] > 0
        assert 0.0 < sites["response_ratio"] <= 1.0
        # Per-site invariants: a win implies a received offer, and
        # decided offers cannot exceed received ones.
        for stats in sites["sites"].values():
            assert stats["wins"] + stats["losses"] <= stats["offers_received"]
            assert stats["offers_received"] <= stats["offers_priced"]
            assert stats["settled"]["count"] == stats["wins"]

    def test_effort_is_nominal_and_on_the_snapshot_surface(self, broker_runs):
        # Regression for the racy effort sketch: per-offer pricing
        # effort is now the *nominal* cost-model figure stamped on the
        # ledger's priced nodes (enumerated plans x seconds-per-plan),
        # independent of cache interleaving — so it lives on the
        # byte-identity snapshot surface (the sim-vs-async and
        # same-seed identity tests above therefore pin it too), and
        # any site that priced an offer shows non-zero effort.
        snapshot = json.loads(broker_runs["sim_a"])
        priced_sites = 0
        for stats in snapshot["sites"]["sites"].values():
            assert "effort" in stats
            if stats["offers_priced"] > 0:
                priced_sites += 1
                assert 0 < stats["effort"]["count"] <= stats["offers_priced"]
                assert stats["effort"]["sum"] > 0.0
        assert priced_sites > 0
        operational = broker_runs["service"].live.registry.operational()
        assert all("effort_mean_s" in v for v in operational.values())

    def test_merge_is_order_free(self):
        def build(values):
            registry = SiteStatsRegistry()
            registry.sessions = 1
            stats = registry._site("node0")
            for v in values:
                stats.settled.add(v)
                stats.wins += 1
            return registry

        a, b = build([0.5, 1.5]), build([2.5])
        ab, ba = SiteStatsRegistry(), SiteStatsRegistry()
        ab.merge(a); ab.merge(b)
        ba.merge(b); ba.merge(a)
        assert ab.to_json() == ba.to_json()


# ----------------------------------------------------------------------
class TestQErrorObservatory:
    def test_qerror_definition(self):
        assert qerror(10, 100) == 10.0
        assert qerror(100, 10) == 10.0
        assert qerror(5, 5) == 1.0
        assert qerror(0, 0) == 1.0   # both empty: perfect estimate
        assert qerror(0, 50) > 1.0   # estimated empty, observed rows

    def test_sampling_is_deterministic(self):
        observatory = QErrorObservatory(sample_every=3)
        picks = [observatory.should_sample(i) for i in range(9)]
        assert picks == [observatory.should_sample(i) for i in range(9)]
        assert sum(picks) == 3

    def test_qerror_snapshot_deterministic_across_runs(self, broker_runs):
        qerr_a = json.loads(broker_runs["sim_a"])["qerror"]
        qerr_async = json.loads(broker_runs["async"])["qerror"]
        assert qerr_a == qerr_async
        assert qerr_a["sampled_sessions"] > 0
        assert qerr_a["nodes_observed"] > 0
        assert qerr_a["cells"]

    def test_cells_and_worst_offenders(self, broker_runs):
        observatory = broker_runs["service"].live.qerror
        snapshot = observatory.snapshot()
        for key, cell in snapshot["cells"].items():
            site, _, size = key.rpartition("|")
            assert site and size.isdigit()
            assert cell["count"] >= 1
            assert cell["p90"] >= cell["p50"] >= 1.0 or cell["p50"] >= 1.0
        offenders = observatory.worst_offenders(3)
        assert offenders
        p90s = [entry["p90"] for entry in offenders]
        assert p90s == sorted(p90s, reverse=True)

    def test_observatory_restore_roundtrip(self, broker_runs):
        observatory = broker_runs["service"].live.qerror
        snapshot = observatory.snapshot()
        restored = QErrorObservatory.from_snapshot(snapshot)
        assert json.dumps(restored.snapshot(), sort_keys=True) == json.dumps(
            snapshot, sort_keys=True
        )


# ----------------------------------------------------------------------
class TestPrometheusExposition:
    def test_prom_payload_parses_and_has_required_series(self, broker_runs):
        text = broker_runs["service"].prom_payload()
        snap = parse_prometheus_text(text)
        for family in (
            "repro_broker_uptime_seconds",
            "repro_broker_admitted_total",
            "repro_broker_session_states",
            "repro_live_sessions_observed_total",
            "repro_slo_shed_ratio",
            "repro_qerror_bucket",
        ):
            assert any(name == family for name, _ in snap.samples), family
        # Histogram series must carry the implicit +Inf bucket.
        assert any(
            name == "repro_qerror_bucket"
            and dict(labels).get("le") == "+Inf"
            for name, labels in snap.samples
        )

    def test_prom_agrees_with_json_rollup(self, broker_runs):
        service = broker_runs["service"]
        payload = service.metrics_payload()
        snap = parse_prometheus_text(service.prom_payload())
        assert snap.value("repro_broker_admitted_total") == payload[
            "admitted_total"
        ]
        assert snap.value("repro_broker_shed_total") == payload["shed_total"]
        assert snap.value("repro_broker_completed_total") == payload[
            "completed_total"
        ]
        assert snap.value("repro_broker_sessions_active") == payload[
            "active_sessions"
        ]
        for state, count in payload["states"].items():
            assert snap.value(
                "repro_broker_session_states", state=state
            ) == count, state
        for quantile in ("p50", "p99"):
            assert snap.value(
                "repro_broker_latency_quantile_ms", quantile=quantile
            ) == payload["latency_ms"][quantile]
        info = snap.series("repro_broker_info")
        assert [dict(k)["clock"] for k in info] == [payload["clock"]]

    def test_json_rollup_shape(self, broker_runs):
        payload = broker_runs["service"].metrics_payload()
        assert payload["uptime_s"] > 0
        assert payload["clock"] == "async"
        assert set(payload["states"]) == {
            "active", "queued", "shed", "completed", "degraded", "failed"
        }
        assert payload["states"]["active"] == 0  # drained
        assert payload["states"]["completed"] + payload["states"][
            "degraded"
        ] == len(_arrivals())
        assert payload["slo"]["completed"] == len(_arrivals())

    def test_parser_rejects_malformed_text(self):
        with pytest.raises(PromParseError):
            parse_prometheus_text("# TYPE x bogus\nx 1\n")
        with pytest.raises(PromParseError):  # sample without a family
            parse_prometheus_text("orphan_metric 1\n")
        with pytest.raises(PromParseError):  # duplicate series
            parse_prometheus_text(
                "# TYPE dup counter\ndup_total 1\ndup_total 2\n"
            )
        with pytest.raises(PromParseError):  # non-cumulative buckets
            parse_prometheus_text(
                "# TYPE h histogram\n"
                'h_bucket{le="1"} 5\nh_bucket{le="2"} 3\n'
                'h_bucket{le="+Inf"} 5\nh_sum 2\nh_count 5\n'
            )
        with pytest.raises(PromParseError):  # missing +Inf bucket
            parse_prometheus_text(
                "# TYPE h histogram\n"
                'h_bucket{le="1"} 5\nh_sum 2\nh_count 5\n'
            )

    def test_counter_monotonicity_across_scrapes(self, broker_runs):
        service = broker_runs["service"]
        first = parse_prometheus_text(service.prom_payload())
        second = parse_prometheus_text(service.prom_payload())
        for (name, labels), value in first.samples.items():
            if name.endswith("_total") or name.endswith(("_count", "_sum")):
                later = second.samples.get((name, labels))
                assert later is not None and later >= value, (name, labels)


# ----------------------------------------------------------------------
class TestEventRing:
    def test_cursor_paging(self):
        ring = EventRing(capacity=10)
        for i in range(5):
            ring.append("tick", n=i)
        page = ring.since(0, limit=3)
        assert [e["id"] for e in page["events"]] == [1, 2, 3]
        assert page["cursor"] == 3 and page["dropped"] == 0
        rest = ring.since(page["cursor"])
        assert [e["id"] for e in rest["events"]] == [4, 5]
        assert ring.since(rest["cursor"])["events"] == []

    def test_dropped_accounting_on_overflow(self):
        ring = EventRing(capacity=3)
        for i in range(10):
            ring.append("tick", n=i)
        page = ring.since(0)
        assert [e["id"] for e in page["events"]] == [8, 9, 10]
        assert page["dropped"] == 7

    def test_wraparound_gap_marker(self):
        # Fill past capacity so the ring evicts its oldest entries.
        ring = EventRing(capacity=4)
        for i in range(10):
            ring.append("tick", n=i)
        # A cursor that fell past the ring's tail: events 1..6 are gone
        # (only 7..10 retained), so the resume is flagged non-contiguous.
        page = ring.since(cursor=2)
        assert [e["id"] for e in page["events"]] == [7, 8, 9, 10]
        assert page["dropped"] == 4  # events 3..6 evicted before catchup
        assert page["gap"] is True
        # A live cursor inside the retained window: contiguous, no gap.
        page = ring.since(cursor=8)
        assert [e["id"] for e in page["events"]] == [9, 10]
        assert page["dropped"] == 0
        assert page["gap"] is False
        # Fully caught up: empty page, cursor stable, still no gap.
        page = ring.since(cursor=page["cursor"])
        assert page["events"] == [] and page["gap"] is False
        assert page["cursor"] == 10

    def test_cursor_zero_on_overflowed_ring_reports_gap(self):
        ring = EventRing(capacity=2)
        for i in range(5):
            ring.append("tick", n=i)
        page = ring.since(cursor=0)
        assert [e["id"] for e in page["events"]] == [4, 5]
        assert page["dropped"] == 3
        assert page["gap"] is True

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            EventRing(capacity=0)


# ----------------------------------------------------------------------
class TestSLOTracker:
    def test_budgets_and_epoch_roll(self):
        tracker = SLOTracker(SLOConfig(
            shed_budget=0.5, degraded_budget=0.5, epoch_sessions=4
        ))
        for _ in range(3):
            tracker.observe_completion(0.010)
        tracker.observe_shed()  # rolls the first epoch
        tracker.observe_completion(0.020, degraded=True)
        summary = tracker.summary()
        assert summary["completed"] == 4 and summary["shed"] == 1
        assert summary["shed_within_budget"]
        assert summary["degraded_within_budget"]
        assert summary["latency_p50_s"] > 0
        assert summary["last_epoch"]["sessions"] == 4
        assert summary["epoch"]["epoch"] == 1
        assert summary["epoch"]["completed"] == 1

    def test_budget_breach_flags(self):
        tracker = SLOTracker(SLOConfig(shed_budget=0.01))
        tracker.observe_completion(0.01)
        tracker.observe_shed()
        assert not tracker.summary()["shed_within_budget"]


# ----------------------------------------------------------------------
class TestRouterEndpoints:
    def test_prom_endpoint_returns_text(self, broker_runs):
        router = Router(broker_runs["service"])
        status, payload = router.dispatch("GET", "/metrics/prom")
        assert status == 200 and isinstance(payload, str)
        parse_prometheus_text(payload)

    def test_sites_endpoint_payload(self, broker_runs):
        router = Router(broker_runs["service"])
        status, payload = router.dispatch("GET", "/sites")
        assert status == 200
        assert payload["sites"]["sessions"] == len(_arrivals())
        assert payload["worst_estimators"]
        assert payload["qerror_failures"] == 0
        assert payload["operational"]

    def test_events_endpoint_paging_and_validation(self, broker_runs):
        router = Router(broker_runs["service"])
        status, page = router.dispatch("GET", "/events?since=0&limit=4")
        assert status == 200 and len(page["events"]) == 4
        status, follow = router.dispatch(
            "GET", f"/events?since={page['cursor']}"
        )
        assert status == 200
        assert all(e["id"] > page["cursor"] for e in follow["events"])
        status, error = router.dispatch("GET", "/events?since=banana")
        assert status == 400 and "since" in error["error"]

    def test_live_endpoints_404_when_disabled(self):
        service = BrokerService(world_config=WORLD, clock="sim")
        try:
            router = Router(service)
            for path in ("/sites", "/events"):
                status, payload = router.dispatch("GET", path)
                assert status == 404
                assert "--live-obs" in payload["error"]
            # /metrics/prom stays available — broker families only.
            status, text = router.dispatch("GET", "/metrics/prom")
            assert status == 200
            snap = parse_prometheus_text(text)
            assert snap.value("repro_broker_admitted_total") == 0
            assert not snap.series("repro_live_sessions_observed_total")
        finally:
            service.close()

    def test_drain_is_a_live_obs_barrier(self, broker_runs):
        # A returned drain() means every terminal session is already
        # folded in: the event ring has one submitted + one terminal
        # event per session.
        service = broker_runs["service"]
        events = service.live.events.since(0)["events"]
        kinds = [e["kind"] for e in events]
        assert kinds.count("session.submitted") == len(_arrivals())
        assert kinds.count("session.terminal") == len(_arrivals())
        sampled = [e for e in kinds if e == "session.terminal"]
        assert sampled
