"""Edge-case coverage across modules: sorting end-to-end, non-equi
joins, sequential trades, reservation propagation, IDP fallbacks."""

import pytest

from repro.baselines import DistributedIDPOptimizer
from repro.execution import FederationData, PlanExecutor, evaluate_query
from repro.net import Network
from repro.sql import RelationRef, SPJQuery, column, conjoin, eq
from repro.sql.expr import gt, lt
from repro.trading import (
    BuyerPlanGenerator,
    BuyerStrategy,
    CompetitiveSellerStrategy,
    QueryTrader,
    WeightedValuation,
)
from repro.workload import chain_query, star_query
from tests.conftest import make_federation, make_trader


@pytest.fixture(scope="module")
def world():
    return make_federation(nodes=6, n_relations=3, rows=240, fragments=3,
                           replicas=2, seed=23)


class TestOrderByEndToEnd:
    def test_qt_plan_delivers_sorted_answer(self, world):
        catalog, nodes, estimator, model, builder = world
        query = SPJQuery(
            relations=(RelationRef.of("R0", "r0"),),
            predicate=eq(column("r0", "cat"), 2),
            projections=(column("r0", "id"), column("r0", "val")),
            order_by=(column("r0", "id"),),
        )
        trader, _ = make_trader(catalog, nodes, builder, model)
        result = trader.optimize(query)
        assert result.found
        data = FederationData.build(catalog, seed=23)
        answer = PlanExecutor(data, query).run(result.best.plan)
        ids = [row[0] for row in answer.rows]
        assert ids == sorted(ids)
        assert answer.equals_unordered(evaluate_query(query, data))

    def test_sort_free_variant_is_traded(self, world):
        catalog, nodes, estimator, model, builder = world
        query = chain_query(2).with_order([column("r0", "id")])
        trader, _ = make_trader(catalog, nodes, builder, model)
        result = trader.optimize(query)
        assert result.found
        # some offers answered the unsorted variant
        keys = {c.offer.query.order_by for c in result.contracts}
        assert () in keys or result.iterations == 1


class TestNonEquiJoins:
    def test_theta_join_via_nested_loop(self, world):
        catalog, nodes, estimator, model, builder = world
        query = SPJQuery(
            relations=(RelationRef.of("R0", "a"), RelationRef.of("R1", "b")),
            predicate=conjoin(
                [
                    eq(column("a", "cat"), 1),
                    eq(column("b", "cat"), 2),
                    gt(column("a", "id"), column("b", "id")),
                ]
            ),
        )
        trader, _ = make_trader(catalog, nodes, builder, model)
        result = trader.optimize(query)
        assert result.found
        data = FederationData.build(catalog, seed=23)
        answer = PlanExecutor(data, query).run(result.best.plan)
        assert answer.equals_unordered(evaluate_query(query, data))

    def test_pure_cross_product(self, world):
        catalog, nodes, estimator, model, builder = world
        query = SPJQuery(
            relations=(RelationRef.of("R0", "a"), RelationRef.of("R1", "b")),
            predicate=conjoin(
                [eq(column("a", "cat"), 1), eq(column("b", "cat"), 2),
                 lt(column("a", "id"), 40), lt(column("b", "id"), 40)]
            ),
        )
        trader, _ = make_trader(catalog, nodes, builder, model)
        result = trader.optimize(query)
        assert result.found
        data = FederationData.build(catalog, seed=23)
        answer = PlanExecutor(data, query).run(result.best.plan)
        assert answer.equals_unordered(evaluate_query(query, data))


class TestSequentialTrades:
    def test_same_trader_runs_many_queries(self, world):
        catalog, nodes, estimator, model, builder = world
        trader, network = make_trader(catalog, nodes, builder, model)
        before = 0.0
        for n in (1, 2, 3):
            result = trader.optimize(chain_query(n, selection_cat=n))
            assert result.found
            # the shared clock keeps moving forward
            assert network.now > before
            before = network.now

    def test_results_are_independent(self, world):
        catalog, nodes, estimator, model, builder = world
        trader, _ = make_trader(catalog, nodes, builder, model)
        r1 = trader.optimize(chain_query(2))
        r2 = trader.optimize(chain_query(2))
        # same query, warm market: same plan value either way
        assert r1.plan_cost == pytest.approx(r2.plan_cost, rel=1e-6)


class TestReservationPropagation:
    def test_aggressive_buyer_can_starve_the_market(self, world):
        """A silly-low initial value makes competitive sellers decline;
        with nothing offered, the trade fails."""
        catalog, nodes, estimator, model, builder = world
        network = Network(model)
        from repro.trading import SellerAgent

        sellers = {
            node: SellerAgent(
                catalog.local(node),
                builder,
                strategy=CompetitiveSellerStrategy(margin=0.2),
            )
            for node in nodes
            if node != "client"
        }
        trader = QueryTrader(
            "client",
            sellers,
            network,
            BuyerPlanGenerator(builder, "client"),
            buyer_strategy=BuyerStrategy(pressure=1.0, initial_value=1e-9),
        )
        result = trader.optimize(chain_query(2))
        assert not result.found

    def test_silent_buyer_always_gets_offers(self, world):
        catalog, nodes, estimator, model, builder = world
        network = Network(model)
        from repro.trading import SellerAgent

        sellers = {
            node: SellerAgent(
                catalog.local(node),
                builder,
                strategy=CompetitiveSellerStrategy(margin=0.2),
            )
            for node in nodes
            if node != "client"
        }
        trader = QueryTrader(
            "client",
            sellers,
            network,
            BuyerPlanGenerator(builder, "client"),
            buyer_strategy=BuyerStrategy(announce=False),
        )
        result = trader.optimize(chain_query(2))
        assert result.found


class TestIDPFallbacks:
    def test_distributed_idp_star_query_with_tiny_beam(self, world):
        """m=1 severs most exact assembly paths; the greedy fallback
        must still deliver a correct plan."""
        catalog, nodes, estimator, model, builder = world
        query = star_query(2, selection_cat=1)
        opt = DistributedIDPOptimizer(catalog, builder, "client", m=1)
        result = opt.optimize(query)
        assert result.found
        data = FederationData.build(catalog, seed=23)
        answer = PlanExecutor(data, query).run(result.plan)
        assert answer.equals_unordered(evaluate_query(query, data))

    def test_local_idp_star_with_tiny_beam(self, world):
        from repro.optimizer import IDPOptimizer

        catalog, nodes, estimator, model, builder = world
        query = star_query(2, selection_cat=1)
        result = IDPOptimizer(builder, 2, 1).optimize(query, "node0")
        assert result.plan is not None
