"""Unit tests for the seller agent (partial query constructor, predicates
analyser, pricing)."""

import pytest

from repro.cost import CardinalityEstimator, CostModel
from repro.optimizer import PlanBuilder
from repro.trading import (
    CompetitiveSellerStrategy,
    RequestForBids,
    SellerAgent,
)
from repro.workload import build_telecom_scenario


@pytest.fixture
def world(telecom):
    estimator = CardinalityEstimator(telecom.stats, telecom.catalog.schemas)
    builder = PlanBuilder(
        estimator, CostModel(), schemes=telecom.catalog.schemes
    )
    return telecom, builder


def agent_for(telecom, builder, node, **kwargs):
    return SellerAgent(telecom.catalog.local(node), builder, **kwargs)


class TestOfferGeneration:
    def test_full_and_partial_offers(self, world):
        telecom, builder = world
        agent = agent_for(telecom, builder, "Myconos")
        rfb = RequestForBids("buyer", (telecom.manager_query(),))
        offers, work = agent.prepare_offers(rfb)
        assert work > 0
        by_aliases = {frozenset(o.coverage) for o in offers}
        # full 2-relation offer plus the single-relation partials
        assert frozenset({"c", "i"}) in by_aliases
        assert frozenset({"c"}) in by_aliases
        assert frozenset({"i"}) in by_aliases

    def test_full_offer_is_exact_aggregate(self, world):
        telecom, builder = world
        agent = agent_for(telecom, builder, "Myconos")
        rfb = RequestForBids("buyer", (telecom.manager_query(),))
        offers, _ = agent.prepare_offers(rfb)
        full = [o for o in offers if o.aliases == frozenset({"c", "i"})]
        assert any(o.exact_projections for o in full)

    def test_offer_properties_complete(self, world):
        telecom, builder = world
        agent = agent_for(telecom, builder, "Corfu")
        rfb = RequestForBids("buyer", (telecom.manager_query(),))
        offers, _ = agent.prepare_offers(rfb)
        for offer in offers:
            assert offer.properties.total_time > 0
            assert offer.properties.rows >= 0
            assert offer.properties.first_row_time <= offer.properties.total_time
            assert offer.request_key == telecom.manager_query().key()

    def test_irrelevant_node_offers_only_what_it_has(self, world):
        telecom, builder = world
        agent = agent_for(telecom, builder, "Athens")
        rfb = RequestForBids("buyer", (telecom.manager_query(),))
        offers, _ = agent.prepare_offers(rfb)
        # Athens customers are outside the IN-list: only invoice offers
        assert offers
        assert all(o.aliases == frozenset({"i"}) for o in offers)

    def test_no_partials_mode(self, world):
        telecom, builder = world
        agent = agent_for(telecom, builder, "Myconos", offer_partials=False)
        rfb = RequestForBids("buyer", (telecom.manager_query(),))
        offers, _ = agent.prepare_offers(rfb)
        assert all(o.aliases == frozenset({"c", "i"}) for o in offers)

    def test_max_partial_size(self, world):
        telecom, builder = world
        agent = agent_for(telecom, builder, "Myconos", max_partial_size=1)
        rfb = RequestForBids("buyer", (telecom.manager_query(),))
        offers, _ = agent.prepare_offers(rfb)
        assert all(len(o.aliases) <= 2 for o in offers)

    def test_no_duplicate_offers(self, world):
        telecom, builder = world
        agent = agent_for(telecom, builder, "Myconos")
        rfb = RequestForBids("buyer", (telecom.manager_query(),))
        offers, _ = agent.prepare_offers(rfb)
        keys = [
            (
                o.query.key(),
                tuple(sorted((a, tuple(sorted(f))) for a, f in o.coverage.items())),
                o.exact_projections,
            )
            for o in offers
        ]
        assert len(keys) == len(set(keys))

    def test_multiple_queries_in_rfb(self, world):
        telecom, builder = world
        agent = agent_for(telecom, builder, "Myconos")
        q1 = telecom.manager_query()
        q2 = telecom.manager_query(offices=("Corfu",))
        rfb = RequestForBids("buyer", (q1, q2))
        offers, _ = agent.prepare_offers(rfb)
        keys = {o.request_key for o in offers}
        assert keys == {q1.key(), q2.key()}


class TestViewOffers:
    def test_view_offer_cheaper_than_base(self):
        telecom = build_telecom_scenario(
            n_offices=4, customers_per_office=200, lines_per_customer=3,
            with_views=True,
        )
        estimator = CardinalityEstimator(
            telecom.stats, telecom.catalog.schemas
        )
        builder = PlanBuilder(
            estimator, CostModel(), schemes=telecom.catalog.schemes
        )
        rfb = RequestForBids("buyer", (telecom.manager_query(),))
        with_views = SellerAgent(
            telecom.catalog.local("Myconos"), builder, use_views=True
        )
        without_views = SellerAgent(
            telecom.catalog.local("Myconos"), builder, use_views=False
        )
        offers_v, _ = with_views.prepare_offers(rfb)
        offers_n, _ = without_views.prepare_offers(rfb)
        best_v = min(
            o.properties.total_time
            for o in offers_v
            if o.exact_projections and o.aliases == frozenset({"c", "i"})
        )
        best_n = min(
            o.properties.total_time
            for o in offers_n
            if o.exact_projections and o.aliases == frozenset({"c", "i"})
        )
        assert best_v < best_n

    def test_view_offer_covers_whole_query(self):
        telecom = build_telecom_scenario(
            n_offices=3, customers_per_office=100, with_views=True
        )
        estimator = CardinalityEstimator(
            telecom.stats, telecom.catalog.schemas
        )
        builder = PlanBuilder(
            estimator, CostModel(), schemes=telecom.catalog.schemes
        )
        agent = SellerAgent(telecom.catalog.local("Corfu"), builder)
        rfb = RequestForBids("buyer", (telecom.manager_query(),))
        offers, _ = agent.prepare_offers(rfb)
        schemes = telecom.catalog.schemes
        full = [
            o
            for o in offers
            if o.exact_projections
            and o.coverage.get("c") == schemes["customer"].fragment_ids
        ]
        assert full  # the view-based offer covers everything


class TestPricing:
    def test_competitive_agent_declines_low_reservations(self, world):
        telecom, builder = world
        agent = agent_for(
            telecom,
            builder,
            "Myconos",
            strategy=CompetitiveSellerStrategy(margin=0.2),
        )
        query = telecom.manager_query()
        rfb = RequestForBids(
            "buyer", (query,), reservations={query.key(): 1e-9}
        )
        offers, _ = agent.prepare_offers(rfb)
        assert offers == []

    def test_cooperative_money_equals_cost(self, world):
        telecom, builder = world
        agent = agent_for(telecom, builder, "Myconos")
        rfb = RequestForBids("buyer", (telecom.manager_query(),))
        offers, _ = agent.prepare_offers(rfb)
        for offer in offers:
            assert offer.properties.money == pytest.approx(offer.true_cost)


class TestCapabilities:
    def test_join_incapable_seller_offers_only_parts(self, world):
        telecom, builder = world
        agent = agent_for(telecom, builder, "Myconos", join_capable=False)
        rfb = RequestForBids("buyer", (telecom.manager_query(),))
        offers, _ = agent.prepare_offers(rfb)
        assert offers
        assert all(len(o.aliases) == 1 for o in offers)

    def test_market_with_thin_nodes_still_answers(self, world):
        """Even if every seller is join-incapable the buyer glues the
        single-relation parts itself."""
        from repro.net import Network
        from repro.trading import BuyerPlanGenerator, QueryTrader

        telecom, builder = world
        network = Network(builder.cost_model)
        sellers = {
            node: agent_for(telecom, builder, node, join_capable=False)
            for node in telecom.nodes
        }
        trader = QueryTrader(
            "client", sellers, network,
            BuyerPlanGenerator(builder, "client"),
        )
        result = trader.optimize(telecom.manager_query())
        assert result.found


class TestMessageSizing:
    def test_offer_messages_sized_by_content(self, world):
        from repro.net import Network
        from repro.trading import BiddingProtocol

        telecom, builder = world
        network = Network(builder.cost_model)
        sellers = {
            node: agent_for(telecom, builder, node)
            for node in telecom.nodes
        }
        rfb = RequestForBids("buyer", (telecom.manager_query(),))
        BiddingProtocol().solicit(network, "buyer", sellers, rfb)
        base = (
            network.cost_model.network.control_message_bytes
            * network.stats.messages
        )
        assert network.stats.bytes > base  # offers pay for their content
