"""Unit tests for materialized-view matching (Section 3.5)."""

import pytest

from repro.sql import (
    Aggregate,
    RelationRef,
    SPJQuery,
    Star,
    column,
    conjoin,
    eq,
    in_list,
)
from repro.sql.expr import TRUE, ge
from repro.sql.views import MaterializedView, match_view


@pytest.fixture
def charges_view():
    """The paper's §3.5 example view: charges per (office, custid)."""
    return MaterializedView(
        "v_charges",
        SPJQuery(
            relations=(
                RelationRef.of("customer", "c"),
                RelationRef.of("invoiceline", "i"),
            ),
            predicate=eq(column("c", "custid"), column("i", "custid")),
            projections=(
                column("c", "office"),
                column("i", "custid"),
                Aggregate("sum", column("i", "charge"), "charge_sum"),
            ),
            group_by=(column("c", "office"), column("i", "custid")),
        ),
        row_count=1000,
    )


def manager_query():
    return SPJQuery(
        relations=(
            RelationRef.of("customer", "c"),
            RelationRef.of("invoiceline", "i"),
        ),
        predicate=conjoin(
            [
                eq(column("c", "custid"), column("i", "custid")),
                in_list(column("c", "office"), ("Corfu", "Myconos")),
            ]
        ),
        projections=(
            column("c", "office"),
            Aggregate("sum", column("i", "charge"), "total"),
        ),
        group_by=(column("c", "office"),),
    )


class TestRollupMatch:
    def test_paper_example_rolls_up(self, charges_view, telecom_schemas):
        """The manager's per-office SUM is coarser than the view's
        (office, custid) grouping — the view answers it via rollup."""
        match = match_view(manager_query(), charges_view, telecom_schemas)
        assert match is not None
        assert match.needs_rollup
        # residual: the office IN-list, applicable on a grouping column
        assert match.residual is not TRUE

    def test_exact_grouping_no_rollup(self, charges_view, telecom_schemas):
        query = SPJQuery(
            relations=charges_view.query.relations,
            predicate=charges_view.query.predicate,
            projections=(
                column("c", "office"),
                column("i", "custid"),
                Aggregate("sum", column("i", "charge"), "s"),
            ),
            group_by=(column("c", "office"), column("i", "custid")),
        )
        match = match_view(query, charges_view, telecom_schemas)
        assert match is not None
        assert not match.needs_rollup
        assert match.residual is TRUE

    def test_finer_query_grouping_rejected(self, charges_view, telecom_schemas):
        """A query grouping on a column NOT in the view's grouping cannot
        be answered."""
        query = SPJQuery(
            relations=charges_view.query.relations,
            predicate=charges_view.query.predicate,
            projections=(
                column("c", "custname"),
                Aggregate("sum", column("i", "charge"), "s"),
            ),
            group_by=(column("c", "custname"),),
        )
        assert match_view(query, charges_view, telecom_schemas) is None

    def test_avg_rollup_rejected(self, charges_view, telecom_schemas):
        base = manager_query()
        query = SPJQuery(
            relations=base.relations,
            predicate=base.predicate,
            projections=(
                column("c", "office"),
                Aggregate("avg", column("i", "charge"), "a"),
            ),
            group_by=base.group_by,
        )
        assert match_view(query, charges_view, telecom_schemas) is None

    def test_missing_aggregate_rejected(self, charges_view, telecom_schemas):
        base = manager_query()
        query = SPJQuery(
            relations=base.relations,
            predicate=base.predicate,
            projections=(
                column("c", "office"),
                Aggregate("max", column("i", "charge"), "m"),
            ),
            group_by=base.group_by,
        )
        assert match_view(query, charges_view, telecom_schemas) is None

    def test_residual_on_non_grouping_column_rejected(
        self, charges_view, telecom_schemas
    ):
        base = manager_query()
        query = base.restrict(ge(column("i", "charge"), 5))
        assert match_view(query, charges_view, telecom_schemas) is None


class TestSPJMatch:
    def test_filter_match(self, telecom_schemas):
        view = MaterializedView(
            "v_customers",
            SPJQuery(relations=(RelationRef.of("customer", "c"),)),
            row_count=100,
        )
        query = SPJQuery(
            relations=(RelationRef.of("customer", "x"),),
            predicate=eq(column("x", "office"), "Corfu"),
        )
        match = match_view(query, view, telecom_schemas)
        assert match is not None
        assert not match.needs_rollup
        assert match.residual is not TRUE

    def test_view_missing_rows_rejected(self, telecom_schemas):
        view = MaterializedView(
            "v_corfu",
            SPJQuery(
                relations=(RelationRef.of("customer", "c"),),
                predicate=eq(column("c", "office"), "Corfu"),
            ),
            row_count=100,
        )
        query = SPJQuery(relations=(RelationRef.of("customer", "x"),))
        assert match_view(query, view, telecom_schemas) is None

    def test_view_subset_predicate_accepted(self, telecom_schemas):
        view = MaterializedView(
            "v_islands",
            SPJQuery(
                relations=(RelationRef.of("customer", "c"),),
                predicate=in_list(
                    column("c", "office"), ("Corfu", "Myconos")
                ),
            ),
            row_count=100,
        )
        query = SPJQuery(
            relations=(RelationRef.of("customer", "x"),),
            predicate=eq(column("x", "office"), "Corfu"),
        )
        match = match_view(query, view, telecom_schemas)
        assert match is not None

    def test_relation_mismatch_rejected(self, telecom_schemas):
        view = MaterializedView(
            "v",
            SPJQuery(relations=(RelationRef.of("invoiceline", "i"),)),
            row_count=10,
        )
        query = SPJQuery(relations=(RelationRef.of("customer", "c"),))
        assert match_view(query, view, telecom_schemas) is None

    def test_projection_columns_must_be_exposed(self, telecom_schemas):
        view = MaterializedView(
            "v_names",
            SPJQuery(
                relations=(RelationRef.of("customer", "c"),),
                projections=(column("c", "custid"),),
            ),
            row_count=10,
        )
        query = SPJQuery(
            relations=(RelationRef.of("customer", "x"),),
            projections=(column("x", "office"),),
        )
        assert match_view(query, view, telecom_schemas) is None

    def test_aggregate_query_over_plain_view(self, telecom_schemas):
        view = MaterializedView(
            "v_all",
            SPJQuery(relations=(RelationRef.of("invoiceline", "i"),)),
            row_count=10,
        )
        query = SPJQuery(
            relations=(RelationRef.of("invoiceline", "x"),),
            projections=(Aggregate("sum", column("x", "charge"), "s"),),
        )
        match = match_view(query, view, telecom_schemas)
        assert match is not None and not match.needs_rollup

    def test_negative_row_count_rejected(self):
        with pytest.raises(ValueError):
            MaterializedView(
                "v",
                SPJQuery(relations=(RelationRef.of("customer", "c"),)),
                row_count=-1,
            )
