"""Unit tests for cardinality/selectivity estimation."""

import pytest

from repro.cost import (
    AttributeStats,
    CardinalityEstimator,
    TableStats,
    stats_for_catalog,
)
from repro.sql import RelationRef, SPJQuery, column, conjoin, eq, in_list
from repro.sql.expr import TRUE, ge, gt, le, lt, ne
from repro.sql.query import Aggregate
from tests.conftest import make_federation


@pytest.fixture
def estimator(federation):
    _, _, estimator, _, _ = federation
    return estimator


A2R = {"r0": "R0", "r1": "R1"}


class TestSelectivity:
    def test_equality_uses_distinct(self, estimator):
        sel = estimator.selectivity(eq(column("r0", "cat"), 3), A2R)
        assert sel == pytest.approx(0.1)

    def test_in_list(self, estimator):
        sel = estimator.selectivity(
            in_list(column("r0", "cat"), [1, 2, 3]), A2R
        )
        assert sel == pytest.approx(0.3)

    def test_range(self, estimator):
        sel = estimator.selectivity(lt(column("r0", "id"), 5000), A2R)
        assert 0.45 < sel < 0.55

    def test_not_equal(self, estimator):
        sel = estimator.selectivity(ne(column("r0", "cat"), 3), A2R)
        assert sel == pytest.approx(0.9)

    def test_true_false(self, estimator):
        from repro.sql.expr import FALSE

        assert estimator.selectivity(TRUE, A2R) == 1.0
        assert estimator.selectivity(FALSE, A2R) == 0.0

    def test_conjunction_independence(self, estimator):
        pred = conjoin(
            [eq(column("r0", "cat"), 1), lt(column("r0", "id"), 5000)]
        )
        sel = estimator.selectivity(pred, A2R)
        assert sel == pytest.approx(
            estimator.selectivity(eq(column("r0", "cat"), 1), A2R)
            * estimator.selectivity(lt(column("r0", "id"), 5000), A2R)
        )

    def test_disjunction(self, estimator):
        pred = eq(column("r0", "cat"), 1) | eq(column("r0", "cat"), 2)
        sel = estimator.selectivity(pred, A2R)
        assert sel == pytest.approx(1 - 0.9 * 0.9)

    def test_range_clamped(self, estimator):
        assert estimator.selectivity(gt(column("r0", "id"), 10**9), A2R) == 0.0
        assert (
            estimator.selectivity(le(column("r0", "id"), 10**9), A2R) == 1.0
        )

    def test_join_selectivity(self, estimator):
        join = eq(column("r0", "ref0"), column("r1", "id"))
        sel = estimator.join_selectivity(join, A2R)
        assert sel == pytest.approx(1.0 / 10_000)


class TestQueryRows:
    def test_single_relation(self, estimator):
        q = SPJQuery(relations=(RelationRef.of("R0", "r0"),))
        assert estimator.query_rows(q) == pytest.approx(10_000)

    def test_join_cardinality(self, estimator):
        q = SPJQuery(
            relations=(RelationRef.of("R0", "r0"), RelationRef.of("R1", "r1")),
            predicate=eq(column("r0", "ref0"), column("r1", "id")),
        )
        assert estimator.query_rows(q) == pytest.approx(10_000)

    def test_selection_reduces(self, estimator):
        q = SPJQuery(
            relations=(RelationRef.of("R0", "r0"),),
            predicate=eq(column("r0", "cat"), 1),
        )
        assert estimator.query_rows(q) == pytest.approx(1_000)

    def test_base_rows_override(self, estimator):
        q = SPJQuery(relations=(RelationRef.of("R0", "r0"),))
        assert estimator.query_rows(q, {"r0": 500}) == pytest.approx(500)

    def test_group_by_caps_output(self, estimator):
        q = SPJQuery(
            relations=(RelationRef.of("R0", "r0"),),
            projections=(
                column("r0", "cat"),
                Aggregate("sum", column("r0", "val"), "s"),
            ),
            group_by=(column("r0", "cat"),),
        )
        assert estimator.query_rows(q) == pytest.approx(10)

    def test_scalar_aggregate_is_one_row(self, estimator):
        q = SPJQuery(
            relations=(RelationRef.of("R0", "r0"),),
            projections=(Aggregate("count", None, "n"),),
        )
        assert estimator.query_rows(q) == 1.0


class TestStatsForCatalog:
    def test_datagen_conventions(self, federation):
        catalog, *_ = federation
        stats = stats_for_catalog(catalog)
        r0 = stats["R0"]
        assert r0.row_count == 10_000
        assert r0.attribute("id").distinct == 10_000
        assert r0.attribute("part").distinct == 4
        assert r0.attribute("cat").distinct == 10
        assert r0.attribute("ref0").distinct == 10_000

    def test_unknown_relation_default(self, estimator):
        assert estimator.table_rows("ZZZ") == 1000

    def test_attribute_stats_validation(self):
        with pytest.raises(ValueError):
            AttributeStats(0)

    def test_table_stats_lookup(self):
        stats = TableStats(10, {"a": AttributeStats(5)})
        assert stats.attribute("a").distinct == 5
        assert stats.attribute("zzz") is None
