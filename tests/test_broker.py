"""Broker service behavior: determinism, admission, budgets, HTTP API."""

from __future__ import annotations

import json
import threading
import urllib.request

import pytest

from repro.bench.harness import build_world, run_qt
from repro.broker import (
    COMPLETED,
    DEGRADED,
    SHED,
    AdmissionConfig,
    AdmissionController,
    BrokerError,
    BrokerService,
    OrderedBiddingProtocol,
    Router,
    SessionBudget,
    SessionManager,
    start_server,
)
from repro.broker.sessions import BrokerSession, SessionSpec
from repro.trading.commodity import offer_id_scope
from repro.workload import BurstConfig, build_bursty_workload

WORLD = dict(
    nodes=6, n_relations=4, rows=10_000, fragments=2, replicas=2, seed=7
)


@pytest.fixture(scope="module")
def arrivals():
    return build_bursty_workload(
        BurstConfig(
            tenants=4, bursts=2, burst_size=4, available_relations=4, seed=11
        )
    )


def make_service(**kwargs) -> BrokerService:
    kwargs.setdefault("world_config", WORLD)
    return BrokerService(**kwargs)


def submit_sql(service: BrokerService, sql: str, **payload):
    return service.submit(service.parse_spec({"sql": sql, **payload}))


def serve_all(service: BrokerService, arrivals) -> dict[str, dict]:
    """Submit every arrival, drain, return result payloads by SQL."""
    sessions = [
        submit_sql(service, a.query.sql(), tenant=a.tenant) for a in arrivals
    ]
    assert service.drain(timeout=120.0)
    return {
        s.spec.sql: service.result_payload(s.session_id) for s in sessions
    }


def plan_signature(payload: dict) -> tuple:
    return (
        payload["found"],
        payload["plan_cost"],
        payload["plan"],
        tuple(payload["contracts"]),
    )


class TestAdmissionController:
    def test_admits_until_queue_full(self):
        controller = AdmissionController(
            AdmissionConfig(max_concurrent=2, queue_limit=1)
        )
        assert controller.try_admit()
        assert not controller.try_admit()
        occupancy = controller.occupancy()
        assert occupancy["queued"] == 1
        assert occupancy["shed_total"] == 1
        controller.on_start()
        assert controller.try_admit()  # queue slot freed
        controller.on_finish()

    def test_zero_queue_sheds_everything(self):
        controller = AdmissionController(
            AdmissionConfig(max_concurrent=1, queue_limit=0)
        )
        assert not controller.try_admit()
        assert controller.occupancy()["shed_total"] == 1

    def test_config_validation(self):
        with pytest.raises(ValueError):
            AdmissionConfig(max_concurrent=0)
        with pytest.raises(ValueError):
            AdmissionConfig(queue_limit=-1)
        with pytest.raises(ValueError):
            SessionBudget(rounds=0)


class TestSessionManager:
    def test_overflow_is_shed_not_queued(self):
        release = threading.Event()
        started = threading.Event()

        def runner(session):
            started.set()
            release.wait(timeout=30.0)

        controller = AdmissionController(
            AdmissionConfig(max_concurrent=1, queue_limit=1)
        )
        manager = SessionManager(runner, controller)
        spec = SessionSpec(sql="", query=None)
        running = BrokerSession("s1", spec)
        queued = BrokerSession("s2", spec)
        shed = BrokerSession("s3", spec)
        try:
            assert manager.submit(running)
            started.wait(timeout=30.0)
            assert manager.submit(queued)
            assert not manager.submit(shed)
            assert shed.state == SHED
            assert shed.error == "queue full"
            release.set()
            assert running.wait(timeout=30.0)
            assert queued.wait(timeout=30.0)
            assert running.state == COMPLETED
            assert queued.state == COMPLETED
        finally:
            release.set()
            manager.close()

    def test_runner_failure_marks_failed(self):
        def runner(session):
            raise RuntimeError("boom")

        controller = AdmissionController(AdmissionConfig(max_concurrent=1))
        manager = SessionManager(runner, controller)
        session = BrokerSession("s1", SessionSpec(sql="", query=None))
        try:
            manager.submit(session)
            assert session.wait(timeout=30.0)
            assert session.state == "failed"
            assert "boom" in session.error
        finally:
            manager.close()


class TestBrokerDeterminism:
    def test_concurrent_matches_serial_and_library(self, arrivals):
        """8-way concurrent serving == serial serving == plain run_qt."""
        serial = make_service(
            admission=AdmissionConfig(max_concurrent=1, queue_limit=64)
        )
        concurrent = make_service(
            admission=AdmissionConfig(max_concurrent=8, queue_limit=64)
        )
        try:
            serial_results = serve_all(serial, arrivals)
            concurrent_results = serve_all(concurrent, arrivals)
        finally:
            serial.close()
            concurrent.close()
        assert len(concurrent_results) >= 8
        for sql, payload in serial_results.items():
            assert payload["state"] == COMPLETED
            assert plan_signature(payload) == plan_signature(
                concurrent_results[sql]
            )
        # And the broker's plans are the library's plans: a plain
        # run_qt with the broker's canonical intake ordering (and the
        # broker's fresh per-session offer-id counter, which the plan's
        # provenance strings embed) agrees.
        world = build_world(**WORLD)
        for arrival in arrivals[:3]:
            with offer_id_scope():
                measurement = run_qt(
                    world,
                    arrival.query,
                    protocol=OrderedBiddingProtocol(),
                    label="qt-dp",
                )
            payload = serial_results[arrival.query.sql()]
            assert payload["plan_cost"] == measurement.plan_cost
            assert payload["plan"] == measurement.plan_explain

    def test_async_clock_matches_sim_clock(self, arrivals):
        """Wall-time serving produces the simulator's exact plans."""
        sim = make_service(clock="sim")
        asy = make_service(clock="async")
        try:
            sql = arrivals[0].query.sql()
            sim_payload = serve_one(sim, sql)
            async_payload = serve_one(asy, sql)
        finally:
            sim.close()
            asy.close()
        assert plan_signature(sim_payload) == plan_signature(async_payload)

    def test_critpath_identical_across_clocks(self, arrivals):
        """One session per service (no epoch sharing): the causal
        critical-path decomposition is clock-independent to the byte,
        and its phases tile the session's simulated time."""
        sim = make_service(clock="sim")
        asy = make_service(clock="async")
        try:
            sql = arrivals[0].query.sql()
            sim_session = submit_sql(sim, sql)
            asy_session = submit_sql(asy, sql)
            assert sim_session.wait(timeout=120.0)
            assert asy_session.wait(timeout=120.0)
            sim_cp = sim.critpath_payload(sim_session.session_id)
            asy_cp = asy.critpath_payload(asy_session.session_id)
        finally:
            sim.close()
            asy.close()
        assert json.dumps(sim_cp, sort_keys=True) == json.dumps(
            asy_cp, sort_keys=True
        )
        assert sim_cp["total"] > 0.0
        assert sum(sim_cp["phases"].values()) == pytest.approx(
            sim_cp["total"], rel=1e-9
        )

    def test_sessions_share_the_offer_cache(self, arrivals):
        """A repeated query hits pricing work cached by its predecessor."""
        service = make_service()
        try:
            sql = arrivals[0].query.sql()
            first = serve_one(service, sql)
            second = serve_one(service, sql)
        finally:
            service.close()
        assert first["cache"]["misses"] > 0
        assert second["cache"]["hits"] > 0
        assert plan_signature(first) == plan_signature(second)


def serve_one(service: BrokerService, sql: str, **payload) -> dict:
    session = submit_sql(service, sql, **payload)
    assert session.wait(timeout=120.0)
    return service.result_payload(session.session_id)


class TestBudgets:
    def test_round_budget_degrades_gracefully(self, arrivals):
        service = make_service(
            admission=AdmissionConfig(budget=SessionBudget(rounds=1))
        )
        try:
            payload = serve_one(service, arrivals[0].query.sql())
        finally:
            service.close()
        assert payload["state"] == DEGRADED
        assert payload["degraded"] is True
        assert payload["iterations"] == 1
        assert payload["found"]  # degraded still answers
        assert payload["plan_cost"] > 0

    def test_offer_budget_degrades_gracefully(self, arrivals):
        service = make_service(
            admission=AdmissionConfig(
                budget=SessionBudget(rounds=6, offers=1)
            )
        )
        try:
            payload = serve_one(service, arrivals[0].query.sql())
        finally:
            service.close()
        assert payload["state"] == DEGRADED
        assert payload["offers_considered"] >= 1


class TestExplain:
    def test_explain_works_on_broker_sessions(self, arrivals):
        service = make_service()
        try:
            session = submit_sql(service, arrivals[0].query.sql())
            assert session.wait(timeout=120.0)
            explanation = service.explain_payload(session.session_id)
        finally:
            service.close()
        assert explanation["found"]
        assert explanation["commodities"]

    def test_untraced_session_409s(self, arrivals):
        service = make_service()
        try:
            session = submit_sql(
                service, arrivals[0].query.sql(), trace=False
            )
            assert session.wait(timeout=120.0)
            with pytest.raises(BrokerError) as err:
                service.explain_payload(session.session_id)
            with pytest.raises(BrokerError) as crit_err:
                service.critpath_payload(session.session_id)
        finally:
            service.close()
        assert err.value.status == 409
        assert crit_err.value.status == 409


class TestRouter:
    @pytest.fixture()
    def service(self):
        service = make_service()
        yield service
        service.close()

    def test_submit_poll_result_explain(self, service, arrivals):
        router = Router(service)
        body = json.dumps({"sql": arrivals[0].query.sql()}).encode()
        status, payload = router.dispatch("POST", "/sessions", body)
        assert status == 202
        sid = payload["session"]
        assert service.get(sid).wait(timeout=120.0)
        status, payload = router.dispatch("GET", f"/sessions/{sid}")
        assert status == 200 and payload["state"] == COMPLETED
        status, payload = router.dispatch("GET", f"/sessions/{sid}/result")
        assert status == 200 and payload["found"]
        status, payload = router.dispatch("GET", f"/sessions/{sid}/explain")
        assert status == 200 and payload["commodities"]
        status, payload = router.dispatch("GET", f"/sessions/{sid}/critpath")
        assert status == 200 and payload["total"] > 0.0
        assert set(payload["phases"]) >= {"seller_compute", "buyer_dp"}
        status, payload = router.dispatch("GET", "/sessions")
        assert status == 200 and len(payload["sessions"]) == 1
        status, payload = router.dispatch("GET", "/metrics")
        assert status == 200 and payload["completed_total"] == 1
        status, payload = router.dispatch("GET", "/healthz")
        assert status == 200 and payload["status"] == "ok"

    def test_result_is_409_until_terminal(self, service, arrivals):
        # Register a session that never runs: the result and explain
        # endpoints must refuse with 409 while it is non-terminal.
        spec = service.parse_spec({"sql": arrivals[0].query.sql()})
        pending = BrokerSession("pending", spec)
        with service._lock:
            service._sessions[pending.session_id] = pending
        router = Router(service)
        status, payload = router.dispatch("GET", "/sessions/pending/result")
        assert status == 409 and "queued" in payload["error"]
        status, payload = router.dispatch("GET", "/sessions/pending/explain")
        assert status == 409
        status, payload = router.dispatch("GET", "/sessions/pending/critpath")
        assert status == 409

    def test_error_statuses(self, service):
        router = Router(service)
        assert router.dispatch("POST", "/sessions", b"not json")[0] == 400
        assert router.dispatch("POST", "/sessions", b"[]")[0] == 400
        assert router.dispatch("POST", "/sessions", b"{}")[0] == 400
        bad_sql = json.dumps({"sql": "SELECT FROM"}).encode()
        assert router.dispatch("POST", "/sessions", bad_sql)[0] == 400
        bad_mode = json.dumps({"sql": "SELECT r0.a FROM R0 r0",
                               "mode": "magic"}).encode()
        assert router.dispatch("POST", "/sessions", bad_mode)[0] == 400
        assert router.dispatch("GET", "/sessions/nope")[0] == 404
        assert router.dispatch("GET", "/nope")[0] == 404
        assert router.dispatch("DELETE", "/sessions")[0] == 405
        assert router.dispatch("POST", "/metrics")[0] == 405

    def test_shed_returns_429(self, arrivals):
        service = make_service(
            admission=AdmissionConfig(max_concurrent=1, queue_limit=0)
        )
        try:
            router = Router(service)
            body = json.dumps({"sql": arrivals[0].query.sql()}).encode()
            status, payload = router.dispatch("POST", "/sessions", body)
        finally:
            service.close()
        assert status == 429
        assert payload["state"] == SHED


class TestHTTPServer:
    def test_round_trip_over_real_sockets(self, arrivals):
        service = make_service()
        server = start_server(service)
        try:
            body = json.dumps({"sql": arrivals[0].query.sql()}).encode()
            request = urllib.request.Request(
                f"{server.url}/sessions", data=body,
                headers={"Content-Type": "application/json"},
            )
            with urllib.request.urlopen(request, timeout=60) as response:
                assert response.status == 202
                sid = json.loads(response.read())["session"]
            assert service.get(sid).wait(timeout=120.0)
            with urllib.request.urlopen(
                f"{server.url}/sessions/{sid}/result", timeout=60
            ) as response:
                payload = json.loads(response.read())
            assert payload["state"] == COMPLETED
            assert payload["found"]
            with urllib.request.urlopen(
                f"{server.url}/healthz", timeout=60
            ) as response:
                assert json.loads(response.read())["status"] == "ok"
        finally:
            server.shutdown_broker()
