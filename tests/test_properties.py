"""Property-based tests (hypothesis) for core invariants."""

from __future__ import annotations

import hypothesis.strategies as st
import pytest
from hypothesis import HealthCheck, given, settings

from repro.sql import column, conjoin
from repro.sql.expr import (
    And,
    Column,
    Comparison,
    Expr,
    FALSE,
    InList,
    Literal,
    Not,
    Or,
    TRUE,
    analyze_conjunction,
    implies,
    normalize_conjunction,
    satisfiable,
)
from repro.sql.query import SPJQuery
from repro.sql.schema import PartitionScheme, RelationRef

# ----------------------------------------------------------------------
# Expression generators: a small universe so random rows hit predicates.
# ----------------------------------------------------------------------
COLUMNS = [column("t", "a"), column("t", "b"), column("t", "c")]
VALUES = list(range(-2, 6))

literals = st.sampled_from(VALUES).map(Literal)
columns = st.sampled_from(COLUMNS)
ops = st.sampled_from(["=", "!=", "<", "<=", ">", ">="])


@st.composite
def comparisons(draw):
    col = draw(columns)
    op = draw(ops)
    value = draw(literals)
    return Comparison(op, col, value)


@st.composite
def in_lists(draw):
    col = draw(columns)
    values = draw(st.sets(st.sampled_from(VALUES), min_size=0, max_size=4))
    return InList(col, frozenset(values))


atoms = st.one_of(
    comparisons(),
    in_lists(),
    st.just(TRUE),
    st.just(FALSE),
)


def expressions(depth: int = 3):
    return st.recursive(
        atoms,
        lambda children: st.one_of(
            st.lists(children, min_size=2, max_size=3).map(
                lambda cs: And(tuple(cs))
            ),
            st.lists(children, min_size=2, max_size=3).map(
                lambda cs: Or(tuple(cs))
            ),
            children.map(Not),
        ),
        max_leaves=8,
    )


rows = st.fixed_dictionaries({c: st.sampled_from(VALUES) for c in COLUMNS})


class TestExpressionProperties:
    @given(expr=expressions(), row=rows)
    @settings(max_examples=300, deadline=None)
    def test_simplify_preserves_semantics(self, expr, row):
        assert expr.simplify().evaluate(row) == expr.evaluate(row)

    @given(expr=expressions(), row=rows)
    @settings(max_examples=200, deadline=None)
    def test_negate_is_complement(self, expr, row):
        assert expr.negate().evaluate(row) == (not expr.evaluate(row))

    @given(expr=expressions(), row=rows)
    @settings(max_examples=200, deadline=None)
    def test_simplify_idempotent(self, expr, row):
        once = expr.simplify()
        twice = once.simplify()
        assert twice.evaluate(row) == once.evaluate(row)

    @given(expr=expressions(), row=rows)
    @settings(max_examples=300, deadline=None)
    def test_satisfiable_is_sound(self, expr, row):
        """If any row satisfies the expression, satisfiable() must agree."""
        if expr.evaluate(row):
            assert satisfiable(expr)

    @given(
        conjuncts=st.lists(
            st.one_of(comparisons(), in_lists()), min_size=1, max_size=4
        ),
        row=rows,
    )
    @settings(max_examples=300, deadline=None)
    def test_normalize_conjunction_preserves_semantics(self, conjuncts, row):
        expr = conjoin(conjuncts)
        assert normalize_conjunction(expr).evaluate(row) == expr.evaluate(row)

    @given(
        p=st.lists(st.one_of(comparisons(), in_lists()), min_size=1,
                   max_size=3),
        q=st.lists(st.one_of(comparisons(), in_lists()), min_size=1,
                   max_size=3),
        row=rows,
    )
    @settings(max_examples=300, deadline=None)
    def test_implies_is_sound(self, p, q, row):
        """implies(p, q) answering True really means p(x) -> q(x)."""
        premise, conclusion = conjoin(p), conjoin(q)
        if implies(premise, conclusion) and premise.evaluate(row):
            assert conclusion.evaluate(row)

    @given(
        conjuncts=st.lists(
            st.one_of(comparisons(), in_lists()), min_size=1, max_size=4
        ),
        row=rows,
    )
    @settings(max_examples=200, deadline=None)
    def test_analyze_conjunction_constraints_sound(self, conjuncts, row):
        """A row satisfying the conjunction satisfies every per-column
        domain constraint."""
        constraints, residual, ok = analyze_conjunction(conjuncts)
        expr = conjoin(conjuncts)
        if expr.evaluate(row):
            assert ok
            for col, constraint in constraints.items():
                assert constraint.admits(row[col])


class TestPartitionProperties:
    @given(
        boundaries=st.lists(
            st.integers(min_value=-100, max_value=100),
            min_size=1,
            max_size=5,
            unique=True,
        ).map(sorted),
        value=st.integers(min_value=-150, max_value=150),
    )
    @settings(max_examples=200, deadline=None)
    def test_range_fragments_partition_every_value(self, boundaries, value):
        scheme = PartitionScheme.by_range("r", "id", boundaries)
        col = column("r", "id")
        hits = [
            f.fragment_id
            for f in scheme.fragments
            if f.predicate.evaluate({col: value})
        ]
        assert len(hits) == 1

    @given(
        groups=st.lists(
            st.sets(st.integers(0, 20), min_size=1, max_size=3),
            min_size=1,
            max_size=5,
        ).filter(
            lambda gs: all(
                not (a & b)
                for i, a in enumerate(gs)
                for b in gs[i + 1 :]
            )
        ),
        subset_seed=st.integers(0, 2**16),
    )
    @settings(
        max_examples=100,
        deadline=None,
        suppress_health_check=[HealthCheck.filter_too_much],
    )
    def test_restriction_for_selects_exactly_the_fragments(
        self, groups, subset_seed
    ):
        scheme = PartitionScheme.by_list("r", "a", [sorted(g) for g in groups])
        import random

        rng = random.Random(subset_seed)
        wanted = frozenset(
            f.fragment_id
            for f in scheme.fragments
            if rng.random() < 0.5
        ) or frozenset({0})
        pred = scheme.restriction_for("x", wanted)
        col = column("x", "a")
        for fragment_id, group in enumerate(groups):
            for value in group:
                expected = fragment_id in wanted
                assert pred.evaluate({col: value}) == expected


class TestQueryProperties:
    @given(
        cat=st.integers(0, 9),
        n=st.integers(1, 4),
        data=st.data(),
    )
    @settings(max_examples=100, deadline=None)
    def test_canonical_key_stable_under_conjunct_shuffle(self, cat, n, data):
        from repro.workload import chain_query

        query = chain_query(n, selection_cat=cat)
        conjuncts = list(query.predicate.conjuncts())
        shuffled = data.draw(st.permutations(conjuncts))
        query2 = SPJQuery(
            relations=tuple(reversed(query.relations)),
            predicate=conjoin(shuffled),
            projections=query.projections,
            group_by=query.group_by,
        )
        assert query.key() == query2.key()
