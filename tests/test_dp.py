"""Unit tests for the local optimizers: DP, IDP-M, greedy."""

import itertools

import pytest

from repro.optimizer import (
    DynamicProgrammingOptimizer,
    GreedyOptimizer,
    IDPOptimizer,
)
from repro.optimizer.dp import connecting_conjuncts, subset_connected
from repro.sql import RelationRef, SPJQuery, column, conjoin, eq
from repro.workload import chain_query, star_query
from tests.conftest import make_federation


@pytest.fixture(scope="module")
def builder():
    *_, builder = make_federation(nodes=10, n_relations=8)
    return builder


class TestHelpers:
    def test_connecting_conjuncts(self):
        join = eq(column("a", "x"), column("b", "x"))
        other = eq(column("c", "x"), column("d", "x"))
        found = connecting_conjuncts(
            [join, other], frozenset({"a"}), frozenset({"b"})
        )
        assert found == (join,)

    def test_subset_connected(self):
        j1 = eq(column("a", "x"), column("b", "x"))
        j2 = eq(column("b", "x"), column("c", "x"))
        assert subset_connected(frozenset("abc"), [j1, j2])
        assert not subset_connected(frozenset("ac"), [j1, j2])
        assert subset_connected(frozenset("a"), [])


class TestDP:
    def test_beats_or_matches_greedy(self, builder):
        for n in (3, 4, 5):
            query = chain_query(n, selection_cat=2)
            dp = DynamicProgrammingOptimizer(builder).optimize(query, "node0")
            greedy = GreedyOptimizer(builder).optimize(query, "node0")
            assert dp.plan.response_time() <= greedy.plan.response_time() + 1e-9

    def test_emits_partial_results(self, builder):
        query = chain_query(3)
        result = DynamicProgrammingOptimizer(builder).optimize(query, "node0")
        # chain r0-r1-r2: connected subsets = 3 singletons + {r0,r1},
        # {r1,r2} + full = 6
        assert len(result.best) == 6

    def test_cross_product_avoided_for_connected(self, builder):
        query = chain_query(4)
        result = DynamicProgrammingOptimizer(builder).optimize(query, "node0")
        assert frozenset({"r0", "r2"}) not in result.best

    def test_disconnected_query_still_planned(self, builder):
        refs = (RelationRef.of("R0", "r0"), RelationRef.of("R1", "r1"))
        query = SPJQuery(relations=refs)  # no join: cross product
        result = DynamicProgrammingOptimizer(builder).optimize(query, "node0")
        assert result.plan is not None

    def test_coverage_restricts_scan(self, builder):
        query = chain_query(1)
        full = DynamicProgrammingOptimizer(builder).optimize(query, "node0")
        partial = DynamicProgrammingOptimizer(builder).optimize(
            query, "node0", coverage={"r0": frozenset({0})}
        )
        assert partial.plan.rows < full.plan.rows

    def test_coverage_does_not_double_count_selectivity(self, builder):
        # selection on the partition attribute equals the coverage
        # restriction; rows must not be discounted twice
        query = chain_query(1).restrict(eq(column("r0", "part"), 0))
        result = DynamicProgrammingOptimizer(builder).optimize(
            query, "node0", coverage={"r0": frozenset({0})}
        )
        assert result.plan.rows == pytest.approx(2500)

    def test_aggregate_finish(self, builder):
        query = chain_query(2, aggregate=True)
        result = DynamicProgrammingOptimizer(builder).optimize(query, "node0")
        from repro.optimizer.plans import GroupAgg

        assert isinstance(result.plan, GroupAgg)

    def test_order_by_finish(self, builder):
        query = chain_query(2).with_order([column("r0", "id")])
        result = DynamicProgrammingOptimizer(builder).optimize(query, "node0")
        from repro.optimizer.plans import Sort

        assert isinstance(result.plan, Sort)

    def test_too_many_relations_rejected(self, builder):
        query = chain_query(15)
        with pytest.raises(ValueError):
            DynamicProgrammingOptimizer(builder, max_relations=14).optimize(
                query, "node0"
            )

    def test_optimal_on_star_vs_exhaustive(self, builder):
        """DP must equal brute-force enumeration of all bushy orders on a
        small star query."""
        query = star_query(2, selection_cat=1)
        dp = DynamicProgrammingOptimizer(builder).optimize(
            query, "node0", finish=False
        )
        assert dp.plan is not None
        # brute force: all permutations of left-deep joins
        a2r = {r.alias: r.name for r in query.relations}
        conjuncts = query.predicate.conjuncts()
        best = None
        aliases = sorted(query.aliases)
        for perm in itertools.permutations(aliases):
            scans = {}
            for alias in perm:
                ref = query.relation_for(alias)
                scheme = builder.schemes[ref.name]
                scans[alias] = builder.scan(
                    ref,
                    scheme.fragment_ids,
                    query.selection_on(alias),
                    "node0",
                    a2r,
                )
            plan = scans[perm[0]]
            covered = {perm[0]}
            for alias in perm[1:]:
                connecting = connecting_conjuncts(
                    conjuncts, frozenset(covered), frozenset({alias})
                )
                plan = builder.join(
                    plan, scans[alias], connecting, a2r, site="node0"
                )
                covered.add(alias)
            if best is None or plan.response_time() < best:
                best = plan.response_time()
        assert dp.plan.response_time() <= best + 1e-9


class TestIDP:
    def test_matches_dp_on_small_queries(self, builder):
        query = chain_query(4, selection_cat=1)
        dp = DynamicProgrammingOptimizer(builder).optimize(query, "node0")
        idp = IDPOptimizer(builder, 2, 5).optimize(query, "node0")
        assert idp.plan is not None
        assert idp.plan.response_time() >= dp.plan.response_time() - 1e-9

    def test_enumerates_no_more_than_dp(self, builder):
        query = chain_query(6, selection_cat=1)
        dp = DynamicProgrammingOptimizer(builder).optimize(query, "node0")
        idp = IDPOptimizer(builder, 2, 2).optimize(query, "node0")
        assert idp.enumerated <= dp.enumerated

    def test_always_finds_plan_despite_pruning(self, builder):
        for n in (4, 6, 8):
            query = chain_query(n)
            idp = IDPOptimizer(builder, 2, 1).optimize(query, "node0")
            assert idp.plan is not None

    def test_validation(self, builder):
        with pytest.raises(ValueError):
            IDPOptimizer(builder, k=1)
        with pytest.raises(ValueError):
            IDPOptimizer(builder, m=0)


class TestGreedy:
    def test_handles_wide_queries(self, builder):
        query = chain_query(8)
        result = GreedyOptimizer(builder).optimize(query, "node0")
        assert result.plan is not None

    def test_enumerates_quadratically(self, builder):
        q4 = chain_query(4)
        q8 = chain_query(8)
        e4 = GreedyOptimizer(builder).optimize(q4, "node0").enumerated
        e8 = GreedyOptimizer(builder).optimize(q8, "node0").enumerated
        assert e8 < e4 * 8  # far below DP growth

    def test_aggregate_finish(self, builder):
        query = chain_query(3, aggregate=True)
        result = GreedyOptimizer(builder).optimize(query, "node0")
        from repro.optimizer.plans import GroupAgg

        assert isinstance(result.plan, GroupAgg)
