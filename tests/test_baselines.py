"""Unit/integration tests for the traditional-optimizer baselines."""

import pytest

from repro.baselines import (
    DistributedDPOptimizer,
    DistributedIDPOptimizer,
    MariposaBroker,
)
from repro.net import MessageKind, Network
from repro.trading import SellerAgent
from repro.workload import chain_query
from tests.conftest import make_federation


@pytest.fixture(scope="module")
def world():
    return make_federation(nodes=8, n_relations=4, fragments=4, replicas=2)


class TestDistributedDP:
    def test_finds_plan(self, world):
        catalog, nodes, estimator, model, builder = world
        opt = DistributedDPOptimizer(catalog, builder, "client")
        result = opt.optimize(chain_query(3, selection_cat=1))
        assert result.found
        assert result.enumerated > 0
        assert result.plan_cost > 0

    def test_stats_sync_messages(self, world):
        catalog, nodes, estimator, model, builder = world
        network = Network(model)
        opt = DistributedDPOptimizer(catalog, builder, "client")
        result = opt.optimize(chain_query(2), network=network)
        others = len(catalog.nodes) - 1  # everyone except the buyer
        assert result.messages.count(MessageKind.STATS_REQUEST) == others
        assert result.messages.count(MessageKind.STATS_RESPONSE) == others
        assert result.optimization_time > 0

    def test_plan_delivers_to_buyer(self, world):
        catalog, nodes, estimator, model, builder = world
        opt = DistributedDPOptimizer(catalog, builder, "client")
        result = opt.optimize(chain_query(3))
        # top of the plan runs at (or delivers to) the buyer
        from repro.optimizer.plans import Transfer

        plan = result.plan
        assert plan.site == "client" or (
            isinstance(plan, Transfer) and plan.dest == "client"
        )

    def test_aggregate_query(self, world):
        catalog, nodes, estimator, model, builder = world
        opt = DistributedDPOptimizer(catalog, builder, "client")
        result = opt.optimize(chain_query(2, aggregate=True))
        from repro.optimizer.plans import GroupAgg

        assert isinstance(result.plan, GroupAgg)

    def test_enumeration_grows_with_joins(self, world):
        catalog, nodes, estimator, model, builder = world
        opt = DistributedDPOptimizer(catalog, builder, "client")
        e2 = opt.optimize(chain_query(2)).enumerated
        e4 = opt.optimize(chain_query(4)).enumerated
        assert e4 > e2

    def test_unsatisfiable_selection(self, world):
        from repro.sql import column, conjoin, eq

        catalog, nodes, estimator, model, builder = world
        query = chain_query(1).restrict(
            conjoin([eq(column("r0", "part"), 0), eq(column("r0", "part"), 1)])
        )
        opt = DistributedDPOptimizer(catalog, builder, "client")
        assert not opt.optimize(query).found

    def test_too_wide_rejected(self, world):
        catalog, nodes, estimator, model, builder = world
        opt = DistributedDPOptimizer(catalog, builder, "client",
                                     max_relations=3)
        with pytest.raises(ValueError):
            opt.optimize(chain_query(4))


class TestDistributedIDP:
    def test_prunes_but_still_plans(self, world):
        catalog, nodes, estimator, model, builder = world
        dp = DistributedDPOptimizer(catalog, builder, "client")
        idp = DistributedIDPOptimizer(catalog, builder, "client", m=3)
        query = chain_query(4, selection_cat=1)
        dp_result = dp.optimize(query)
        idp_result = idp.optimize(query)
        assert idp_result.found
        assert idp_result.enumerated <= dp_result.enumerated
        assert (
            idp_result.plan_cost >= dp_result.plan_cost - 1e-9
        )  # never better than exhaustive

    def test_validation(self, world):
        catalog, nodes, estimator, model, builder = world
        with pytest.raises(ValueError):
            DistributedIDPOptimizer(catalog, builder, "client", k=1)


class TestMariposa:
    def test_single_round_fewer_messages(self, world):
        catalog, nodes, estimator, model, builder = world
        network = Network(model)
        sellers = {
            node: SellerAgent(catalog.local(node), builder)
            for node in nodes
            if node != "client"
        }
        broker = MariposaBroker("client", sellers, network, builder)
        result = broker.optimize(chain_query(3, selection_cat=1))
        assert result.found
        # exactly one RFB round
        assert result.messages.count(MessageKind.RFB) == len(sellers)

    def test_worse_or_equal_plans_than_qt(self, world):
        from tests.conftest import make_trader

        catalog, nodes, estimator, model, builder = world
        query = chain_query(3, selection_cat=1)

        trader, _ = make_trader(catalog, nodes, builder, model)
        qt = trader.optimize(query)

        network = Network(model)
        sellers = {
            node: SellerAgent(catalog.local(node), builder)
            for node in nodes
            if node != "client"
        }
        mariposa = MariposaBroker("client", sellers, network, builder)
        mp = mariposa.optimize(query)
        assert mp.found
        assert mp.plan_cost >= qt.plan_cost - 1e-9

    def test_single_relation(self, world):
        catalog, nodes, estimator, model, builder = world
        network = Network(model)
        sellers = {
            node: SellerAgent(catalog.local(node), builder)
            for node in nodes
            if node != "client"
        }
        broker = MariposaBroker("client", sellers, network, builder)
        assert broker.optimize(chain_query(1)).found
