"""Unit tests for the negotiation protocols."""

import pytest

from repro.cost import CardinalityEstimator, CostModel
from repro.net import MessageKind, Network
from repro.optimizer import PlanBuilder
from repro.trading import (
    AdaptiveMarginStrategy,
    BargainingProtocol,
    BiddingProtocol,
    CompetitiveSellerStrategy,
    RequestForBids,
    SellerAgent,
    VickreyAuctionProtocol,
)


@pytest.fixture
def world(telecom):
    estimator = CardinalityEstimator(telecom.stats, telecom.catalog.schemas)
    builder = PlanBuilder(
        estimator, CostModel(), schemes=telecom.catalog.schemes
    )
    network = Network(CostModel())
    sellers = {
        node: SellerAgent(telecom.catalog.local(node), builder)
        for node in telecom.nodes
    }
    return telecom, network, sellers


class TestBidding:
    def test_collects_offers_and_counts_messages(self, world):
        telecom, network, sellers = world
        rfb = RequestForBids("buyer", (telecom.manager_query(),))
        result = BiddingProtocol().solicit(network, "buyer", sellers, rfb)
        assert result.offers
        # one RFB per seller, one reply per seller
        assert network.stats.count(MessageKind.RFB) == len(sellers)
        replies = network.stats.count(MessageKind.OFFER) + network.stats.count(
            MessageKind.NO_OFFER
        )
        assert replies == len(sellers)
        assert result.elapsed > 0

    def test_sellers_work_in_parallel(self, world):
        """Round time is bounded by the slowest seller, not the sum."""
        telecom, network, sellers = world
        rfb = RequestForBids("buyer", (telecom.manager_query(),))
        result = BiddingProtocol().solicit(network, "buyer", sellers, rfb)
        busiest = max(network.busy_until(n) for n in sellers)
        total_work = sum(network.busy_until(n) for n in sellers)
        assert result.finished_at < total_work or busiest == total_work
        reply_delay = (
            network.cost_model.network.latency
            + network.cost_model.network.control_message_bytes
            / network.cost_model.network.bandwidth
        )
        assert result.finished_at == pytest.approx(
            busiest + reply_delay, rel=0.05
        )

    def test_award_notifies_winners_and_losers(self, world):
        telecom, network, sellers = world
        rfb = RequestForBids("buyer", (telecom.manager_query(),))
        protocol = BiddingProtocol()
        result = protocol.solicit(network, "buyer", sellers, rfb)
        winning = result.offers[:1]
        losing = result.offers[1:]
        final = protocol.award(network, "buyer", winning, losing, sellers)
        assert final == winning
        assert network.stats.count(MessageKind.AWARD) == 1
        assert network.stats.count(MessageKind.REJECT) >= 1


class TestVickrey:
    def test_winner_pays_second_price(self, world):
        telecom, network, sellers = world
        competitive = {
            node: SellerAgent(
                telecom.catalog.local(node),
                sellers[node].builder,
                strategy=CompetitiveSellerStrategy(
                    margin=0.1 * (i + 1)
                ),
            )
            for i, node in enumerate(sorted(sellers))
        }
        rfb = RequestForBids("buyer", (telecom.manager_query(),))
        protocol = VickreyAuctionProtocol()
        result = protocol.solicit(network, "buyer", competitive, rfb)
        # pick the cheapest full offer per request key
        offers = sorted(result.offers, key=lambda o: o.properties.money)
        winner, losers = offers[0], offers[1:]
        final = protocol.settle_prices([winner], losers)
        competing = sorted(
            o.properties.money
            for o in result.offers
            if o.request_key == winner.request_key
        )
        if len(competing) > 1:
            assert final[0].properties.money == pytest.approx(competing[1])
        # the Vickrey price never undercuts the winner's own bid
        assert final[0].properties.money >= winner.properties.money - 1e-12

    def test_unchallenged_winner_pays_own_bid(self, world):
        telecom, network, sellers = world
        rfb = RequestForBids("buyer", (telecom.manager_query(),))
        protocol = VickreyAuctionProtocol()
        result = protocol.solicit(network, "buyer", sellers, rfb)
        # fabricate a request key with a single offer
        only = [o for o in result.offers][:1]
        final = protocol.settle_prices(only, [])
        assert final[0].properties.money == only[0].properties.money


class TestBargaining:
    def test_more_messages_than_bidding(self, world):
        telecom, network, sellers = world
        competitive = {
            node: SellerAgent(
                telecom.catalog.local(node),
                sellers[node].builder,
                strategy=CompetitiveSellerStrategy(margin=0.5),
            )
            for node in sellers
        }
        query = telecom.manager_query()
        low_reservation = {query.key(): 1e-6}

        bid_net = Network(CostModel())
        bidding = BiddingProtocol().solicit(
            bid_net,
            "buyer",
            competitive,
            RequestForBids("buyer", (query,), low_reservation),
        )
        barg_net = Network(CostModel())
        bargaining = BargainingProtocol(max_rounds=3).solicit(
            barg_net,
            "buyer",
            competitive,
            RequestForBids("buyer", (query,), low_reservation),
        )
        assert barg_net.stats.messages > bid_net.stats.messages
        # bargaining eventually extracts offers the one-shot round lost
        assert len(bargaining.offers) >= len(bidding.offers)

    def test_single_round_when_unreserved(self, world):
        telecom, network, sellers = world
        rfb = RequestForBids("buyer", (telecom.manager_query(),))
        result = BargainingProtocol(max_rounds=3).solicit(
            network, "buyer", sellers, rfb
        )
        # cooperative sellers satisfy round 1; no extra rounds
        assert network.stats.count(MessageKind.RFB) == len(sellers)
        assert result.offers

    def test_validation(self):
        with pytest.raises(ValueError):
            BargainingProtocol(max_rounds=0)
        with pytest.raises(ValueError):
            BargainingProtocol(concession=0.0)

    def test_adaptive_sellers_learn_from_awards(self, world):
        telecom, network, sellers = world
        strategies = {
            node: AdaptiveMarginStrategy(margin=0.4, step=0.25)
            for node in sellers
        }
        adaptive = {
            node: SellerAgent(
                telecom.catalog.local(node),
                sellers[node].builder,
                strategy=strategies[node],
            )
            for node in sellers
        }
        rfb = RequestForBids("buyer", (telecom.manager_query(),))
        protocol = BiddingProtocol()
        result = protocol.solicit(network, "buyer", adaptive, rfb)
        by_money = sorted(result.offers, key=lambda o: o.properties.money)
        protocol.award(
            network, "buyer", by_money[:1], by_money[1:], adaptive
        )
        winner = by_money[0].seller
        assert strategies[winner].margin > 0.4
        losers = {o.seller for o in by_money[1:]} - {winner}
        assert all(strategies[n].margin < 0.4 for n in losers)
