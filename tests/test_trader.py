"""Integration tests for the full QT algorithm (Figure 2)."""

import pytest

from repro.cost import CardinalityEstimator, CostModel
from repro.net import MessageKind, Network
from repro.optimizer import PlanBuilder
from repro.sql import RelationRef, SPJQuery, column, eq
from repro.trading import (
    BuyerPlanGenerator,
    QueryTrader,
    SellerAgent,
)
from repro.workload import chain_query
from tests.conftest import make_federation, make_trader


@pytest.fixture(scope="module")
def world():
    return make_federation(nodes=8, n_relations=4, fragments=4, replicas=2)


class TestEndToEnd:
    def test_finds_plan_for_chain(self, world):
        catalog, nodes, estimator, model, builder = world
        trader, network = make_trader(catalog, nodes, builder, model)
        result = trader.optimize(chain_query(3, selection_cat=2))
        assert result.found
        assert result.plan_cost > 0
        assert result.optimization_time > 0
        assert result.messages.messages > 0
        assert result.iterations >= 1

    def test_contracts_match_plan_leaves(self, world):
        catalog, nodes, estimator, model, builder = world
        trader, network = make_trader(catalog, nodes, builder, model)
        result = trader.optimize(chain_query(2))
        purchased_ids = {p.offer_id for p in result.best.purchased()}
        contract_ids = {c.offer.offer_id for c in result.contracts}
        assert contract_ids == purchased_ids
        assert network.stats.count(MessageKind.AWARD) == len(result.contracts)

    def test_trace_is_recorded(self, world):
        catalog, nodes, estimator, model, builder = world
        trader, network = make_trader(catalog, nodes, builder, model)
        result = trader.optimize(chain_query(3))
        assert len(result.trace) == result.iterations
        assert result.trace[0].queries_asked == 1
        assert result.trace[0].offers_received > 0

    def test_iterations_do_not_worsen_plan(self, world):
        catalog, nodes, estimator, model, builder = world
        trader, network = make_trader(catalog, nodes, builder, model)
        result = trader.optimize(chain_query(3, selection_cat=1))
        values = [
            t.best_value for t in result.trace if t.best_value is not None
        ]
        assert values == sorted(values, reverse=True)

    def test_single_relation_query(self, world):
        catalog, nodes, estimator, model, builder = world
        trader, network = make_trader(catalog, nodes, builder, model)
        result = trader.optimize(chain_query(1, selection_cat=5))
        assert result.found

    def test_aggregate_query(self, world):
        catalog, nodes, estimator, model, builder = world
        trader, network = make_trader(catalog, nodes, builder, model)
        result = trader.optimize(chain_query(2, aggregate=True))
        assert result.found

    def test_unanswerable_query_aborts(self, world):
        catalog, nodes, estimator, model, builder = world
        network = Network(model)
        # Only one seller, holding nothing relevant: strip all sellers.
        trader = QueryTrader(
            "client",
            {},
            network,
            BuyerPlanGenerator(builder, "client"),
        )
        result = trader.optimize(chain_query(2))
        assert not result.found
        assert result.contracts == []
        with pytest.raises(ValueError):
            result.plan_cost

    def test_idp_plan_generator(self, world):
        catalog, nodes, estimator, model, builder = world
        trader, network = make_trader(catalog, nodes, builder, model,
                                      mode="idp")
        result = trader.optimize(chain_query(4))
        assert result.found

    def test_max_iterations_respected(self, world):
        catalog, nodes, estimator, model, builder = world
        trader, network = make_trader(catalog, nodes, builder, model)
        trader.max_iterations = 1
        result = trader.optimize(chain_query(3))
        assert result.iterations == 1

    def test_messages_scale_with_sellers(self):
        small = make_federation(nodes=4, n_relations=2, seed=11)
        large = make_federation(nodes=16, n_relations=2, seed=11)
        results = []
        for catalog, nodes, estimator, model, builder in (small, large):
            trader, network = make_trader(catalog, nodes, builder, model)
            results.append(trader.optimize(chain_query(2)))
        assert results[1].messages.messages > results[0].messages.messages

    def test_cooperative_payments_equal_costs(self, world):
        catalog, nodes, estimator, model, builder = world
        trader, network = make_trader(catalog, nodes, builder, model)
        result = trader.optimize(chain_query(2))
        for contract in result.contracts:
            assert contract.surplus == pytest.approx(0.0, abs=1e-9)

    def test_loaded_sellers_lose_to_idle_replicas(self):
        """The paper: offers reflect "the current workload of sellers".
        A heavily loaded replica holder prices itself out of the deal."""
        from repro.cost import NodeCapabilities
        from tests.conftest import make_federation

        catalog, nodes, estimator, model, builder = make_federation(
            nodes=4, n_relations=1, rows=4_000, fragments=2, replicas=3,
            seed=9,
        )
        holders = sorted(catalog.holders("R0", 0))
        loaded = holders[0]
        builder.capabilities[loaded] = NodeCapabilities(load=50.0)
        trader, network = make_trader(catalog, nodes, builder, model)
        result = trader.optimize(chain_query(1))
        assert result.found
        assert loaded not in {c.seller for c in result.contracts}

    def test_telecom_reproduces_paper_flow(self, telecom):
        """The motivating example end-to-end: Athens buys the two island
        answers; the winning plan unions partial aggregates."""
        estimator = CardinalityEstimator(
            telecom.stats, telecom.catalog.schemas
        )
        model = CostModel()
        builder = PlanBuilder(
            estimator, model, schemes=telecom.catalog.schemes
        )
        network = Network(model)
        sellers = {
            node: SellerAgent(telecom.catalog.local(node), builder)
            for node in telecom.nodes
        }
        trader = QueryTrader(
            "client", sellers, network, BuyerPlanGenerator(builder, "client")
        )
        result = trader.optimize(telecom.manager_query())
        assert result.found
        winners = {c.seller for c in result.contracts}
        assert winners == {"Corfu", "Myconos"}
