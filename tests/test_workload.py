"""Unit tests for workload generation and the telecom scenario."""

import pytest

from repro.sql import Aggregate, column
from repro.workload import (
    WorkloadConfig,
    build_telecom_scenario,
    chain_query,
    generate_workload,
    star_query,
)


class TestChainQuery:
    def test_structure(self):
        q = chain_query(4)
        assert len(q.relations) == 4
        assert len(q.join_conjuncts()) == 3

    def test_selection(self):
        q = chain_query(2, selection_cat=5)
        assert q.selection_on("r0").sql() == "r0.cat = 5"

    def test_aggregate_shape(self):
        q = chain_query(2, aggregate=True)
        assert q.has_aggregates
        assert q.group_by == (column("r0", "part"),)

    def test_relation_offset(self):
        q = chain_query(2, relation_offset=3)
        assert {r.name for r in q.relations} == {"R3", "R4"}

    def test_single_relation(self):
        q = chain_query(1)
        assert not q.join_conjuncts()

    def test_invalid(self):
        with pytest.raises(ValueError):
            chain_query(0)


class TestStarQuery:
    def test_structure(self):
        q = star_query(3)
        assert len(q.relations) == 4
        joins = q.join_conjuncts()
        assert len(joins) == 3
        # every join touches the hub
        assert all("r0" in j.tables() for j in joins)

    def test_many_satellites_reuse_keys(self):
        q = star_query(5)
        assert len(q.relations) == 6

    def test_invalid(self):
        with pytest.raises(ValueError):
            star_query(0)


class TestGenerateWorkload:
    def test_deterministic(self):
        config = WorkloadConfig(queries=6, seed=3)
        w1 = [q.key() for q in generate_workload(config)]
        w2 = [q.key() for q in generate_workload(config)]
        assert w1 == w2

    def test_count_and_bounds(self):
        config = WorkloadConfig(
            queries=10, min_relations=2, max_relations=4, seed=1
        )
        workload = generate_workload(config)
        assert len(workload) == 10
        assert all(2 <= len(q.relations) <= 4 for q in workload)

    def test_mix_contains_aggregates(self):
        config = WorkloadConfig(
            queries=30, aggregate_probability=0.5, seed=2
        )
        workload = generate_workload(config)
        assert any(q.has_aggregates for q in workload)
        assert any(not q.has_aggregates for q in workload)


class TestTelecomScenario:
    def test_default_shape(self):
        scenario = build_telecom_scenario(n_offices=3,
                                          customers_per_office=50)
        assert len(scenario.offices) == 3
        assert scenario.catalog.total_rows("customer") == 150
        # invoiceline replicated whole at every office
        assert scenario.catalog.holders("invoiceline", 0) == frozenset(
            scenario.offices
        )

    def test_colocated_placement(self):
        scenario = build_telecom_scenario(
            n_offices=3, customers_per_office=50,
            invoice_placement="colocated",
        )
        for i, office in enumerate(scenario.offices):
            assert scenario.catalog.holders("invoiceline", i) == frozenset(
                {office}
            )

    def test_views_added(self):
        scenario = build_telecom_scenario(
            n_offices=2, customers_per_office=10, with_views=True
        )
        for office in scenario.offices:
            views = scenario.catalog.views_at(office)
            assert len(views) == 1
            assert views[0].query.has_aggregates

    def test_invalid_placement(self):
        with pytest.raises(ValueError):
            build_telecom_scenario(invoice_placement="everywhere")

    def test_manager_query_shape(self):
        scenario = build_telecom_scenario(n_offices=2,
                                          customers_per_office=10)
        q = scenario.manager_query(offices=("Corfu",))
        assert q.group_by == (column("c", "office"),)
        assert any(
            isinstance(p, Aggregate) and p.func == "sum"
            for p in q.projections
        )

    def test_many_offices_get_names(self):
        scenario = build_telecom_scenario(n_offices=10,
                                          customers_per_office=5)
        assert "Office9" in scenario.offices

    def test_row_factories_cover_relations(self):
        scenario = build_telecom_scenario(n_offices=2,
                                          customers_per_office=10)
        assert set(scenario.row_factories) == {"customer", "invoiceline"}
