"""Fault-injection subsystem: plans, injector, resilience, equivalence."""

from __future__ import annotations

import itertools

import pytest

import repro.trading.commodity as commodity
from repro.bench.harness import BUYER, build_world, run_qt, run_qt_faulty
from repro.execution import FederationData, PlanExecutor, evaluate_query
from repro.faults import (
    ANY,
    CrashWindow,
    FaultInjector,
    FaultPlan,
    LinkFaults,
    RenegotiationPolicy,
    ResilientTrader,
)
from repro.net import Message, MessageKind, Network
from repro.trading import BiddingProtocol, BuyerPlanGenerator, QueryTrader
from repro.workload import chain_query


class TestFaultPlan:
    def test_rate_validation(self):
        with pytest.raises(ValueError):
            LinkFaults(drop_rate=1.5)
        with pytest.raises(ValueError):
            LinkFaults(duplicate_rate=-0.1)
        with pytest.raises(ValueError):
            LinkFaults(delay_spike_seconds=-1.0)

    def test_crash_window_validation(self):
        with pytest.raises(ValueError):
            CrashWindow(crash_at=-1.0)
        with pytest.raises(ValueError):
            CrashWindow(crash_at=2.0, recover_at=2.0)

    def test_crash_window_semantics(self):
        window = CrashWindow(crash_at=1.0, recover_at=3.0)
        assert not window.covers(0.5)
        assert window.covers(1.0)
        assert window.covers(2.9)
        assert not window.covers(3.0)  # half-open: recovered at 3.0
        assert window.overlaps(0.0, 1.5)
        assert not window.overlaps(3.0, 9.0)
        forever = CrashWindow(crash_at=5.0)
        assert forever.covers(1e12)
        assert forever.overlaps(6.0, float("inf"))

    def test_null_plan(self):
        assert FaultPlan().is_null
        assert not FaultPlan.uniform(drop_rate=0.1).is_null
        assert not FaultPlan().with_crash("n0", 1.0).is_null

    def test_link_match_priority(self):
        exact = LinkFaults(drop_rate=0.4)
        from_a = LinkFaults(drop_rate=0.3)
        to_b = LinkFaults(drop_rate=0.2)
        fallback = LinkFaults(drop_rate=0.1)
        plan = FaultPlan(
            default_link=fallback,
            links={("a", "b"): exact, ("a", ANY): from_a, (ANY, "b"): to_b},
        )
        assert plan.link_for("a", "b") is exact
        assert plan.link_for("a", "c") is from_a
        assert plan.link_for("c", "b") is to_b
        assert plan.link_for("c", "d") is fallback

    def test_json_roundtrip(self, tmp_path):
        plan = FaultPlan(
            seed=42,
            default_link=LinkFaults(drop_rate=0.1, duplicate_rate=0.05),
            links={
                ("client", "node3"): LinkFaults(drop_rate=0.5),
                (ANY, "node1"): LinkFaults(delay_spike_rate=0.2,
                                           delay_spike_seconds=0.1),
            },
            crashes={
                "node1": (CrashWindow(1.0, 2.0), CrashWindow(9.0)),
            },
        )
        path = tmp_path / "plan.json"
        plan.to_file(path)
        assert FaultPlan.from_file(path) == plan

    def test_json_rejects_unknown_keys(self):
        with pytest.raises(ValueError):
            FaultPlan.from_json({"seed": 1, "chaos": True})


class TestFaultInjector:
    def _deliveries(self, plan: FaultPlan, n: int = 20) -> list[list[float]]:
        from repro.cost import CostModel

        net = Network(CostModel())
        injector = FaultInjector(plan)
        return [
            injector.intercept(
                net, Message(MessageKind.RFB, "a", "b", i), depart=0.0
            )
            for i in range(n)
        ]

    def test_same_seed_same_schedule(self):
        plan = FaultPlan.uniform(
            drop_rate=0.3, duplicate_rate=0.3,
            delay_spike_rate=0.3, delay_spike_seconds=0.5, seed=13,
        )
        assert self._deliveries(plan) == self._deliveries(plan)

    def test_different_seed_different_schedule(self):
        base = dict(drop_rate=0.3, duplicate_rate=0.3,
                    delay_spike_rate=0.3, delay_spike_seconds=0.5)
        a = self._deliveries(FaultPlan.uniform(seed=1, **base), n=50)
        b = self._deliveries(FaultPlan.uniform(seed=2, **base), n=50)
        assert a != b

    def test_null_plan_consumes_no_randomness(self):
        injector = FaultInjector(FaultPlan(seed=7))
        state = injector.rng.getstate()
        assert self._deliveries(FaultPlan(seed=7))  # draws happen elsewhere
        assert injector.rng.getstate() == state

    def test_certain_drop(self):
        deliveries = self._deliveries(FaultPlan.uniform(drop_rate=1.0), n=5)
        assert all(d == [] for d in deliveries)

    def test_certain_duplicate(self):
        deliveries = self._deliveries(
            FaultPlan.uniform(duplicate_rate=1.0), n=5
        )
        for arrivals in deliveries:
            assert len(arrivals) == 2
            assert arrivals[1] > arrivals[0]

    def test_delay_spike_bounds(self):
        plan = FaultPlan.uniform(
            delay_spike_rate=1.0, delay_spike_seconds=0.5
        )
        baseline = self._deliveries(FaultPlan())[0][0]
        for arrivals in self._deliveries(plan, n=10):
            spike = arrivals[0] - baseline
            assert 0.5 <= spike < 1.0  # uniform in [1, 2) x seconds

    def test_sender_crash_drops_at_depart(self):
        plan = FaultPlan().with_crash("a", crash_at=0.0)
        injector = FaultInjector(plan)
        assert self._intercept_one(injector) == []
        assert injector.log.dropped_sender_down == 1

    def test_recipient_crash_drops_at_arrival(self):
        plan = FaultPlan().with_crash("b", crash_at=0.0)
        injector = FaultInjector(plan)
        assert self._intercept_one(injector) == []
        assert injector.log.dropped_recipient_down == 1

    def test_recovered_recipient_receives(self):
        # Down only until well before the message arrives.
        plan = FaultPlan(
            crashes={"b": (CrashWindow(0.0, 1e-9),)}
        )
        assert self._intercept_one(FaultInjector(plan)) != []

    def _intercept_one(self, injector: FaultInjector) -> list[float]:
        from repro.cost import CostModel

        net = Network(CostModel())
        return injector.intercept(
            net, Message(MessageKind.RFB, "a", "b", None), depart=0.0
        )

    def test_network_stats_mirror(self):
        from repro.cost import CostModel

        net = Network(CostModel())
        net.register("a", lambda n, m: None)
        net.register("b", lambda n, m: None)
        net.install_faults(
            FaultInjector(FaultPlan.uniform(drop_rate=1.0, seed=3))
        )
        net.send(Message(MessageKind.RFB, "a", "b", None))
        net.run()
        assert net.stats.dropped == 1
        assert net.stats.messages == 1  # sends are counted, arrivals lost


def _trade(world, query, *, fault_plan=None, timeout=None, policy=None):
    """Direct trader wiring with offer-id counter reset for comparisons."""
    commodity._offer_ids = itertools.count(1)
    network = Network(world.model)
    injector = None
    if fault_plan is not None:
        injector = FaultInjector(fault_plan)
        network.install_faults(injector)
    trader = QueryTrader(
        BUYER,
        world.seller_agents(offer_cache=None, use_offer_cache=False),
        network,
        BuyerPlanGenerator(world.builder, BUYER),
        protocol=BiddingProtocol(timeout=timeout),
    )
    if injector is None:
        return trader.optimize(query)
    return ResilientTrader(trader, injector, policy=policy).optimize(query)


@pytest.fixture(scope="module")
def small_world():
    return build_world(nodes=6, n_relations=3, fragments=3, replicas=2, seed=7)


class TestZeroFaultEquivalence:
    def test_null_injector_is_byte_identical(self, small_world):
        query = chain_query(3, selection_cat=3)
        plain = _trade(small_world, query)
        nulled = _trade(small_world, query, fault_plan=FaultPlan())
        with_deadline = _trade(
            small_world, query, fault_plan=FaultPlan(), timeout=10.0
        )
        for other in (nulled, with_deadline):
            assert other.found == plain.found
            assert other.plan_cost == plain.plan_cost
            assert other.optimization_time == plain.optimization_time
            assert other.messages.messages == plain.messages.messages
            assert other.messages.bytes == plain.messages.bytes
            assert other.offers_considered == plain.offers_considered
            assert other.iterations == plain.iterations
            assert other.best.plan.explain() == plain.best.plan.explain()
        assert nulled.messages.dropped == 0
        assert nulled.resilience.clean

    def test_runner_level_equivalence(self, small_world):
        query = chain_query(2, selection_cat=3)
        commodity._offer_ids = itertools.count(1)
        plain = run_qt(
            small_world, query, offer_cache=None, use_offer_cache=False
        )
        commodity._offer_ids = itertools.count(1)
        nulled = run_qt_faulty(
            small_world, query, FaultPlan(), timeout=None,
            offer_cache=None, use_offer_cache=False,
        )
        assert (plain.plan_cost, plain.optimization_time, plain.messages,
                plain.offers, plain.iterations) == (
            nulled.plan_cost, nulled.optimization_time, nulled.messages,
            nulled.offers, nulled.iterations)


class TestFaultyNegotiation:
    def test_seeded_drop_run_quiesces_with_valid_plan(self, small_world):
        query = chain_query(3, selection_cat=3)
        clean = _trade(small_world, query)
        faulty = _trade(
            small_world, query,
            fault_plan=FaultPlan.uniform(drop_rate=0.1, seed=11),
            timeout=0.05,
        )
        assert faulty.found
        assert faulty.messages.dropped > 0
        assert faulty.resilience.timeouts_fired > 0
        # The negotiated plan is complete: executing it over materialized
        # data reproduces the centralized answer.
        data = FederationData.build(small_world.catalog, seed=7)
        answer = PlanExecutor(data, query).run(faulty.best.plan)
        assert answer.equals_unordered(evaluate_query(query, data))
        # Quality holds in this seeded scenario.
        assert faulty.plan_cost == pytest.approx(clean.plan_cost)

    def test_all_silent_round_retries_with_backoff(self, small_world):
        query = chain_query(2, selection_cat=3)
        # Every seller reply is lost: client hears nothing, retries its
        # RFB round max_retries times, then gives up without a plan.
        plan = FaultPlan(
            links={(ANY, BUYER): LinkFaults(drop_rate=1.0)}, seed=3
        )
        result = _trade(
            small_world, query, fault_plan=plan, timeout=0.05,
            policy=RenegotiationPolicy(max_rounds=0),
        )
        assert not result.found
        assert result.resilience.retries > 0
        assert result.messages.retried > 0

    def test_crashed_winner_triggers_renegotiation(self, small_world):
        query = chain_query(3, selection_cat=3)
        clean = _trade(small_world, query)
        victim = clean.contracts[0].seller
        faulty = _trade(
            small_world, query,
            fault_plan=FaultPlan(seed=7).with_crash(victim, crash_at=1e6),
            timeout=0.05,
        )
        assert faulty.found
        summary = faulty.resilience
        assert summary.renegotiations >= 1
        assert summary.contracts_voided >= 1
        assert all(c.voided for c in summary.voided)
        assert victim not in {c.seller for c in faulty.contracts}
        # The whole-run accounting spans the renegotiation too.
        assert faulty.messages.messages > clean.messages.messages

    def test_greedy_fallback_when_dp_budget_exhausted(self, small_world):
        query = chain_query(3, selection_cat=3)
        clean = _trade(small_world, query)
        victim = clean.contracts[0].seller
        faulty = _trade(
            small_world, query,
            fault_plan=FaultPlan(seed=7).with_crash(victim, crash_at=1e6),
            timeout=0.05,
            policy=RenegotiationPolicy(dp_budget=0),  # force the fallback
        )
        assert faulty.found
        assert victim not in {c.seller for c in faulty.contracts}

    def test_degradation_reported_against_reference(self, small_world):
        query = chain_query(3, selection_cat=3)
        clean = _trade(small_world, query)
        commodity._offer_ids = itertools.count(1)
        m = run_qt_faulty(
            small_world, query,
            FaultPlan.uniform(drop_rate=0.1, seed=11),
            timeout=0.05, baseline_cost=clean.plan_cost,
            offer_cache=None, use_offer_cache=False,
        )
        assert m.degradation is not None
        assert m.degradation >= 0.0

    def test_voided_contract_describes_itself(self, small_world):
        query = chain_query(3, selection_cat=3)
        clean = _trade(small_world, query)
        voided = clean.contracts[0].void()
        assert voided.voided
        assert not clean.contracts[0].voided  # void() copies
