"""Causal DAG + critical-path decomposition: structure, exact replay.

The contract under test (``repro.obs.causal`` / ``repro.obs.critpath``):

* the DAG is built from causal ids and record *args* only, so the same
  seed produces the same bytes on every run, worker count, and clock;
* the critical-path replay recomputes the session timeline from the
  deterministic args (per-delivery ``lat``, compute ``work``, armed
  deadlines) and reproduces the simulated optimization time *bitwise*;
* phase attributions tile each round, and rounds tile the session —
  the decomposition never invents or loses simulated time.
"""

from __future__ import annotations

import itertools
import json
import math

import pytest

import repro.trading.commodity as commodity
from repro.bench.harness import BUYER, build_world, run_qt, run_qt_faulty
from repro.faults import FaultInjector, FaultPlan, ResilientTrader
from repro.net import Network
from repro.obs import (
    CAUSAL_SCHEMA_VERSION,
    CRITPATH_SCHEMA_VERSION,
    PHASES,
    CausalDag,
    CriticalPath,
    Tracer,
)
from repro.obs.tracer import NO_PARENT
from repro.trading import BiddingProtocol, BuyerPlanGenerator, QueryTrader
from repro.workload import chain_query


@pytest.fixture(scope="module")
def world():
    return build_world(nodes=6, n_relations=4, fragments=2, replicas=2, seed=7)


def _traced(world, query, *, plan=None, timeout=None, workers=None):
    """One traced run; returns (measurement, tracer)."""
    commodity._offer_ids = itertools.count(1)
    tracer = Tracer()
    if plan is not None:
        m = run_qt_faulty(
            world, query, plan, timeout=timeout, mode="dp",
            workers=workers, offer_cache=None, use_offer_cache=False,
            tracer=tracer,
        )
    else:
        m = run_qt(
            world, query, mode="dp", workers=workers, offer_cache=None,
            use_offer_cache=False, tracer=tracer,
        )
    assert m.found
    return m, tracer


# ----------------------------------------------------------------------
class TestCausalDag:
    def test_structure_and_summary(self, world):
        _, tracer = _traced(world, chain_query(3, selection_cat=3))
        dag = CausalDag.from_records(tracer.records)
        assert dag.nodes
        assert dag.roots(), "a negotiation always has root RFBs"
        for mid in sorted(dag.nodes):
            node = dag.nodes[mid]
            parent = node["parent"]
            # Every non-root hangs off a node we also saw.
            assert parent == NO_PARENT or parent in dag.nodes
            # Fault-free: every message delivered exactly once.
            if node["kind"] != "timeout":
                assert len(node["deliveries"]) == 1
                assert node["deliveries"][0]["lat"] > 0.0
        payload = dag.to_dict()
        assert payload["schema_version"] == CAUSAL_SCHEMA_VERSION
        summary = payload["summary"]
        assert summary["nodes"] == len(dag.nodes)
        assert summary["dropped"] == 0
        assert summary["roots"] == len(dag.roots())
        # RFB roots collect their replies as causal children.
        replied = [mid for mid in dag.roots() if dag.replies(mid)]
        assert replied

    def test_same_seed_byte_identical(self, world):
        query = chain_query(3, selection_cat=3)
        _, tracer_a = _traced(world, query)
        _, tracer_b = _traced(world, query)
        assert (
            CausalDag.from_records(tracer_a.records).to_json()
            == CausalDag.from_records(tracer_b.records).to_json()
        )

    def test_worker_count_invisible(self, world):
        query = chain_query(3, selection_cat=3)
        _, serial = _traced(world, query, workers=1)
        _, parallel = _traced(world, query, workers=4)
        assert (
            CausalDag.from_records(serial.records).to_json()
            == CausalDag.from_records(parallel.records).to_json()
        )

    def test_faulty_dag_carries_verdicts(self, world):
        plan = FaultPlan.uniform(drop_rate=0.15, duplicate_rate=0.1, seed=11)
        m, tracer = _traced(
            world, chain_query(3, selection_cat=3), plan=plan, timeout=0.05
        )
        assert m.dropped > 0 or m.duplicated > 0
        dag = CausalDag.from_records(tracer.records)
        summary = dag.to_dict()["summary"]
        assert summary["faults"] > 0
        # Dropped messages are exactly those with no surviving copy.
        assert summary["dropped"] == sum(
            1 for mid in dag.nodes if dag.dropped(mid)
        )


# ----------------------------------------------------------------------
class TestCriticalPath:
    def test_fault_free_replay_is_bitwise_exact(self, world):
        m, tracer = _traced(world, chain_query(3, selection_cat=3))
        critical = CriticalPath.from_records(tracer.records)
        assert critical is not None
        assert critical.total == m.optimization_time  # bitwise, not approx
        assert critical.reconciles()

    def test_phases_tile_the_session(self, world):
        m, tracer = _traced(world, chain_query(3, selection_cat=3))
        critical = CriticalPath.from_records(tracer.records)
        payload = critical.to_dict()
        assert payload["schema_version"] == CRITPATH_SCHEMA_VERSION
        assert tuple(payload["phases"]) == PHASES  # shape is run-invariant
        # Phase latencies sum to the session's simulated time, and each
        # round's phases sum to that round's span.
        assert math.isclose(
            sum(payload["phases"].values()), m.optimization_time,
            rel_tol=1e-9, abs_tol=1e-12,
        )
        for trade in payload["trades"]:
            for round_out in trade["rounds"]:
                assert math.isclose(
                    sum(round_out["phases"].values()), round_out["total"],
                    rel_tol=1e-9, abs_tol=1e-12,
                )

    def test_faulty_replay_is_bitwise_exact(self, world):
        plan = FaultPlan.uniform(
            drop_rate=0.15, duplicate_rate=0.1, delay_spike_rate=0.1,
            delay_spike_seconds=0.02, seed=11,
        )
        m, tracer = _traced(
            world, chain_query(3, selection_cat=3), plan=plan, timeout=0.05
        )
        assert m.dropped > 0 or m.duplicated > 0
        critical = CriticalPath.from_records(tracer.records)
        assert critical.total == m.optimization_time
        assert critical.reconciles()

    def test_renegotiation_replay_and_phase(self, world):
        query = chain_query(3, selection_cat=3)
        clean, _ = _traced(world, query)
        # Crash the winning seller post-award to force a renegotiation.
        commodity._offer_ids = itertools.count(1)
        network = Network(world.model)
        trader = QueryTrader(
            BUYER, world.seller_agents(offer_cache=None, use_offer_cache=False),
            network, BuyerPlanGenerator(world.builder, BUYER),
            protocol=BiddingProtocol(timeout=0.05),
        )
        result = trader.optimize(query)
        victim = result.contracts[0].seller
        plan = FaultPlan(seed=7).with_crash(victim, crash_at=1e6)
        tracer = Tracer()
        commodity._offer_ids = itertools.count(1)
        m = run_qt_faulty(
            world, query, plan, timeout=0.05, mode="dp",
            offer_cache=None, use_offer_cache=False, tracer=tracer,
        )
        assert m.found and m.renegotiations >= 1
        critical = CriticalPath.from_records(tracer.records)
        assert critical.total == m.optimization_time
        assert critical.reconciles()
        assert critical.phases["renegotiation"] > 0.0

    def test_same_seed_byte_identical(self, world):
        query = chain_query(3, selection_cat=3)
        _, tracer_a = _traced(world, query)
        _, tracer_b = _traced(world, query)
        assert (
            CriticalPath.from_records(tracer_a.records).to_json()
            == CriticalPath.from_records(tracer_b.records).to_json()
        )

    def test_worker_count_invisible(self, world):
        query = chain_query(3, selection_cat=3)
        _, serial = _traced(world, query, workers=1)
        _, parallel = _traced(world, query, workers=4)
        assert (
            CriticalPath.from_records(serial.records).to_json()
            == CriticalPath.from_records(parallel.records).to_json()
        )

    def test_from_rows_matches_from_records(self, world):
        """The offline path (JSONL rows) equals the live path bitwise."""
        from repro.obs.export import jsonl_lines

        _, tracer = _traced(world, chain_query(3, selection_cat=3))
        rows = [json.loads(line) for line in jsonl_lines(tracer.records)]
        assert (
            CriticalPath.from_rows(rows).to_json()
            == CriticalPath.from_records(tracer.records).to_json()
        )
        assert (
            CausalDag.from_rows(rows).to_json()
            == CausalDag.from_records(tracer.records).to_json()
        )

    def test_render_and_top_segments(self, world):
        _, tracer = _traced(world, chain_query(3, selection_cat=3))
        critical = CriticalPath.from_records(tracer.records)
        text = critical.render(top=3)
        assert "critical path:" in text
        assert "round bottlenecks:" in text
        payload = critical.to_dict(top=3)
        assert len(payload["segments"]) <= 3
        assert payload["summary"]["segments"] == len(critical.segments)

    def test_non_trading_trace_is_none(self):
        tracer = Tracer()
        with tracer.span("misc.work", "test", site="x"):
            pass
        assert CriticalPath.from_records(tracer.records) is None


# ----------------------------------------------------------------------
class TestTelemetryIntegration:
    def test_result_telemetry_carries_critical_path(self, world):
        commodity._offer_ids = itertools.count(1)
        network = Network(world.model)
        tracer = Tracer()
        network.attach_tracer(tracer)
        trader = QueryTrader(
            BUYER, world.seller_agents(offer_cache=None, use_offer_cache=False),
            network, BuyerPlanGenerator(world.builder, BUYER),
        )
        result = trader.optimize(chain_query(3, selection_cat=3))
        assert result.telemetry is not None
        stored = result.telemetry.critical_path
        assert stored is not None
        assert stored["total"] == result.optimization_time
        # The stored decomposition is exactly what a fresh replay gives.
        fresh = CriticalPath.from_records(tracer.records).to_dict()
        assert json.dumps(stored, sort_keys=True) == json.dumps(
            fresh, sort_keys=True
        )
