"""Seller offer-cache behavior: accounting, keying, and negotiation impact."""

from __future__ import annotations

import pytest

from repro.bench.harness import build_world, run_qt
from repro.cost import NodeCapabilities
from repro.trading import CacheStats, OfferCache, SellerAgent
from repro.workload import chain_query

from tests.conftest import make_federation


class TestCacheStats:
    def test_counters_and_rates(self):
        stats = CacheStats(hits=3, misses=1)
        assert stats.lookups == 4
        assert stats.hit_rate == 0.75
        assert CacheStats().hit_rate == 0.0

    def test_snapshot_delta(self):
        stats = CacheStats(hits=2, misses=5, evictions=1)
        earlier = stats.snapshot()
        stats.add(CacheStats(hits=4, misses=1))
        delta = stats.delta_since(earlier)
        assert (delta.hits, delta.misses, delta.evictions) == (4, 1, 0)


class TestOfferCache:
    def test_validation(self):
        with pytest.raises(ValueError):
            OfferCache(hit_work_fraction=1.5)
        with pytest.raises(ValueError):
            OfferCache(hit_work_fraction=-0.1)
        with pytest.raises(ValueError):
            OfferCache(max_entries=0)

    def test_miss_then_hit(self):
        cache = OfferCache()
        caps = NodeCapabilities()
        query = chain_query(2)
        key = cache.key_for(query, {"r0": frozenset((0,))}, "n0", caps, "dp")
        assert cache.lookup(key) is None
        cache.store(key, "result")
        assert cache.lookup(key) == "result"
        assert (cache.stats.hits, cache.stats.misses) == (1, 1)
        assert len(cache) == 1
        cache.clear()
        assert len(cache) == 0

    def test_key_includes_capabilities_and_coverage(self):
        cache = OfferCache()
        query = chain_query(2)
        coverage = {"r0": frozenset((0, 1))}
        caps = NodeCapabilities()
        base = cache.key_for(query, coverage, "n0", caps, "dp")
        # Load feedback (E13) changes capabilities -> different key.
        loaded = cache.key_for(
            query, coverage, "n0", caps.with_load(0.5), "dp"
        )
        assert loaded != base
        other_cov = cache.key_for(
            query, {"r0": frozenset((0,))}, "n0", caps, "dp"
        )
        assert other_cov != base
        other_site = cache.key_for(query, coverage, "n1", caps, "dp")
        assert other_site != base
        # Coverage iteration order does not matter.
        two = {"r0": frozenset((1, 0)), "r1": frozenset((2,))}
        reordered = {"r1": frozenset((2,)), "r0": frozenset((0, 1))}
        assert cache.key_for(
            query, two, "n0", caps, "dp"
        ) == cache.key_for(query, reordered, "n0", caps, "dp")

    def test_fifo_eviction(self):
        cache = OfferCache(max_entries=2)
        caps = NodeCapabilities()
        query = chain_query(2)
        keys = [
            cache.key_for(query, {}, f"n{i}", caps, "dp") for i in range(3)
        ]
        for i, key in enumerate(keys):
            cache.store(key, i)
        assert cache.stats.evictions == 1
        assert cache.lookup(keys[0]) is None  # the oldest was evicted
        assert cache.lookup(keys[1]) == 1
        assert cache.lookup(keys[2]) == 2


class TestSellerCachedOptimize:
    def test_hit_charges_fraction_of_work(self):
        catalog, nodes, _est, _model, builder = make_federation()
        node = nodes[0]
        agent = SellerAgent(catalog.local(node), builder)
        query = chain_query(2)
        coverage = {
            alias: frozenset(
                catalog.schemes[query.relation_for(alias).name].fragment_ids
            )
            for alias in query.aliases
        }
        first, first_work = agent.optimize_cached(query, coverage)
        again, again_work = agent.optimize_cached(query, coverage)
        assert again is first  # the very same memoized result
        assert first_work == first.enumerated * agent.seconds_per_plan
        assert again_work == pytest.approx(
            first_work * agent.offer_cache.hit_work_fraction
        )
        assert agent.offer_cache.stats.hits == 1

    def test_disabled_cache_reoptimizes(self):
        catalog, nodes, _est, _model, builder = make_federation()
        node = nodes[0]
        agent = SellerAgent(
            catalog.local(node), builder, use_offer_cache=False
        )
        assert agent.offer_cache is None
        query = chain_query(2)
        first, first_work = agent.optimize_cached(query, {})
        second, second_work = agent.optimize_cached(query, {})
        assert first is not second
        assert first_work == second_work


class TestNegotiationWithCache:
    def test_repeat_trade_hits_cache_with_identical_plan(self):
        world = build_world(nodes=6, n_relations=4)
        query = chain_query(3)
        first = run_qt(world, query)
        second = run_qt(world, query)
        assert second.cache_hits >= 1
        assert second.plan_cost == first.plan_cost
        assert second.messages == first.messages

    def test_first_trade_unaffected_by_cache(self):
        query = chain_query(3)
        cached = run_qt(build_world(nodes=6, n_relations=4), query)
        uncached = run_qt(
            build_world(nodes=6, n_relations=4),
            query,
            offer_cache=None,
            use_offer_cache=False,
        )
        assert uncached.cache_hits == 0 and uncached.cache_misses == 0
        assert cached.plan_cost == uncached.plan_cost
        assert cached.messages == uncached.messages
        assert cached.offers == uncached.offers
        # Intra-trade hits may shave simulated pricing time, but never
        # change what the negotiation decides.
        assert cached.optimization_time <= uncached.optimization_time


class TestCacheChurnUnderRenegotiation:
    """Fault-driven renegotiation re-prices subqueries while node load
    shifts (crashed peers dump their work on survivors).  The cache key
    embeds the seller's *current* capabilities, so no amount of churn may
    ever serve an offer priced for a stale capability snapshot."""

    import hypothesis.strategies as st
    from hypothesis import HealthCheck, given, settings

    LOADS = (0.0, 0.25, 0.5, 1.0, 2.0, 4.0)

    @staticmethod
    def _setup():
        catalog, nodes, _est, _model, builder = make_federation(
            nodes=4, n_relations=2, fragments=2, replicas=2
        )
        node = nodes[0]
        agent = SellerAgent(catalog.local(node), builder)
        query = chain_query(2)
        coverage = {
            alias: frozenset(
                catalog.schemes[query.relation_for(alias).name].fragment_ids
            )
            for alias in query.aliases
        }
        return builder, node, agent, query, coverage

    @given(loads=st.lists(st.sampled_from(LOADS), min_size=1, max_size=8))
    @settings(
        deadline=None,
        max_examples=25,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_churn_never_serves_stale_offers(self, loads):
        builder, node, agent, query, coverage = self._setup()
        base_caps = builder.caps(node)
        fresh = SellerAgent(agent.local, builder, use_offer_cache=False)
        for load in loads:
            builder.capabilities[node] = base_caps.with_load(load)
            cached_result, _ = agent.optimize_cached(query, coverage)
            expected, _ = fresh.optimize_cached(query, coverage)
            # Whatever mixture of hits and misses the churn produced,
            # the cached answer must equal re-optimizing under the
            # node's *current* capabilities, bit for bit.
            assert cached_result.plan.explain() == expected.plan.explain()
            assert (
                cached_result.plan.response_time()
                == expected.plan.response_time()
            )
            assert cached_result.enumerated == expected.enumerated

    @given(
        first=st.sampled_from(LOADS),
        second=st.sampled_from(LOADS),
    )
    @settings(deadline=None, max_examples=20)
    def test_repeat_load_hits_distinct_loads_miss(self, first, second):
        builder, node, agent, query, coverage = self._setup()
        base_caps = builder.caps(node)
        builder.capabilities[node] = base_caps.with_load(first)
        agent.optimize_cached(query, coverage)
        before = agent.offer_cache.stats.snapshot()
        builder.capabilities[node] = base_caps.with_load(second)
        agent.optimize_cached(query, coverage)
        delta = agent.offer_cache.stats.delta_since(before)
        if second == first:
            assert (delta.hits, delta.misses) == (1, 0)
        else:
            assert (delta.hits, delta.misses) == (0, 1)


class TestConcurrentSessions:
    """The broker regression: one cache, many interleaved sessions."""

    def test_views_share_entries_with_private_accounting(self):
        base = OfferCache()
        caps = NodeCapabilities()
        query = chain_query(2)
        key = base.key_for(query, {"r0": frozenset((0,))}, "n0", caps, "dp")
        first = base.session_view()
        second = base.session_view()
        assert first.lookup(key) is None
        first.store(key, "priced")
        # The entry crosses views; the miss/hit accounting does not.
        assert second.lookup(key) == "priced"
        assert (first.stats.hits, first.stats.misses) == (0, 1)
        assert (second.stats.hits, second.stats.misses) == (1, 0)
        assert (base.stats.hits, base.stats.misses) == (0, 0)
        assert len(base) == len(first) == len(second) == 1

    def test_interleaved_sessions_account_exactly(self):
        import threading

        base = OfferCache()
        caps = NodeCapabilities()
        keys = [
            base.key_for(
                chain_query(2), {"r0": frozenset((i,))}, f"n{i % 3}",
                caps, "dp",
            )
            for i in range(8)
        ]
        rounds = 200
        views = [base.session_view() for _ in range(4)]
        barrier = threading.Barrier(len(views))

        def session(view):
            barrier.wait()
            for i in range(rounds):
                key = keys[i % len(keys)]
                if view.lookup(key) is None:
                    view.store(key, f"dp-{i}")

        threads = [
            threading.Thread(target=session, args=(view,)) for view in views
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30.0)
        # Every lookup was either a hit or a miss — none lost to a
        # race — and the shared store holds each key exactly once.
        for view in views:
            assert view.stats.hits + view.stats.misses == rounds
        assert len(base) == len(keys)
        total_misses = sum(view.stats.misses for view in views)
        assert len(keys) <= total_misses <= len(keys) * len(views)
