"""Unit tests for global/local catalogs and the federation generator."""

import pytest

from repro.catalog import Catalog, FederationConfig, build_federation
from repro.catalog.datagen import RelationSpec
from repro.sql import PartitionScheme, Relation


def small_catalog():
    catalog = Catalog()
    rel = Relation.of("r", "id", "part", ("val", "float"))
    scheme = PartitionScheme.by_list("r", "part", [[0], [1]], [10, 20])
    catalog.add_relation(rel, scheme)
    catalog.place("r", 0, "n0")
    catalog.place("r", 1, ["n0", "n1"])
    return catalog


class TestCatalog:
    def test_placement_and_holders(self):
        catalog = small_catalog()
        assert catalog.holders("r", 0) == frozenset({"n0"})
        assert catalog.holders("r", 1) == frozenset({"n0", "n1"})

    def test_held_by(self):
        catalog = small_catalog()
        assert catalog.held_by("n0") == {"r": frozenset({0, 1})}
        assert catalog.held_by("n1") == {"r": frozenset({1})}
        assert catalog.held_by("zzz") == {}

    def test_local_catalog(self):
        catalog = small_catalog()
        local = catalog.local("n1")
        assert local.holds("r", 1)
        assert not local.holds("r", 0)
        assert local.local_rows("r") == 20
        assert local.held_fragments("r")[0].fragment_id == 1

    def test_replication_factor(self):
        catalog = small_catalog()
        assert catalog.replication_factor("r") == pytest.approx(1.5)
        assert catalog.replication_factor("zzz") == 0.0

    def test_duplicate_relation_rejected(self):
        catalog = small_catalog()
        with pytest.raises(ValueError):
            catalog.add_relation(Relation.of("r", "id"))

    def test_scheme_name_mismatch_rejected(self):
        catalog = Catalog()
        with pytest.raises(ValueError):
            catalog.add_relation(
                Relation.of("a", "id"), PartitionScheme.single("b")
            )

    def test_partition_attr_must_exist(self):
        catalog = Catalog()
        with pytest.raises(ValueError):
            catalog.add_relation(
                Relation.of("r", "id"),
                PartitionScheme.by_list("r", "zzz", [[1]]),
            )

    def test_place_unknown_fragment(self):
        catalog = small_catalog()
        with pytest.raises(KeyError):
            catalog.place("r", 99, "n0")

    def test_validate_detects_unplaced(self):
        catalog = Catalog()
        catalog.add_relation(
            Relation.of("r", "id"), PartitionScheme.single("r")
        )
        with pytest.raises(ValueError):
            catalog.validate()

    def test_total_rows(self):
        assert small_catalog().total_rows("r") == 30

    def test_default_scheme_is_single(self):
        catalog = Catalog()
        catalog.add_relation(Relation.of("r", "id"))
        assert len(catalog.scheme("r").fragments) == 1


class TestFederationGenerator:
    def test_every_fragment_placed(self):
        config = FederationConfig.uniform(
            nodes=6, n_relations=3, fragments=4, replicas=2, seed=1
        )
        catalog, nodes = build_federation(config)
        for relation, fragment_id, holders in catalog.placements():
            assert len(holders) >= 2

    def test_client_node_holds_nothing(self):
        config = FederationConfig.uniform(nodes=4, n_relations=2)
        catalog, nodes = build_federation(config)
        assert "client" in nodes
        assert catalog.held_by("client") == {}

    def test_deterministic(self):
        config = FederationConfig.uniform(
            nodes=8, n_relations=3, replicas=3, seed=42
        )
        c1, _ = build_federation(config)
        c2, _ = build_federation(config)
        assert list(c1.placements()) == list(c2.placements())

    def test_row_counts_sum(self):
        config = FederationConfig.uniform(
            nodes=4, n_relations=1, rows=1003, fragments=4
        )
        catalog, _ = build_federation(config)
        assert catalog.total_rows("R0") == 1003

    def test_range_partition_style(self):
        config = FederationConfig(
            nodes=4,
            relations=(RelationSpec("R0", rows=100, fragments=4,
                                    partition_style="range"),),
        )
        catalog, _ = build_federation(config)
        assert catalog.scheme("R0").attribute == "id"

    def test_single_fragment(self):
        config = FederationConfig(
            nodes=2, relations=(RelationSpec("R0", rows=100, fragments=1),)
        )
        catalog, _ = build_federation(config)
        assert len(catalog.scheme("R0").fragments) == 1

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(nodes=0),
            dict(nodes=2, replicas=0),
            dict(nodes=2, replicas=3),
        ],
    )
    def test_invalid_configs(self, kwargs):
        with pytest.raises(ValueError):
            FederationConfig(relations=(RelationSpec("R0"),), **kwargs)

    def test_invalid_relation_spec(self):
        with pytest.raises(ValueError):
            RelationSpec("R0", rows=0)
        with pytest.raises(ValueError):
            RelationSpec("R0", fragments=0)
        with pytest.raises(ValueError):
            RelationSpec("R0", partition_style="hash-ring")

    def test_empty_relations_rejected(self):
        with pytest.raises(ValueError):
            build_federation(FederationConfig(nodes=2))
