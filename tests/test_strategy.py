"""Unit tests for buyer/seller strategies."""

import pytest

from repro.cost import NodeCapabilities
from repro.trading import (
    AdaptiveMarginStrategy,
    AnswerProperties,
    BuyerStrategy,
    CompetitiveSellerStrategy,
    CooperativeSellerStrategy,
    SellerContext,
)


def ctx(reservation=None, load=0.0):
    return SellerContext(
        query_key="q",
        reservation=reservation,
        round_number=1,
        caps=NodeCapabilities(load=load, price_per_second=1.0),
    )


PROPS = AnswerProperties(total_time=1.0, rows=10.0)


class TestCooperative:
    def test_truthful_price(self):
        priced = CooperativeSellerStrategy().price(PROPS, 2.0, ctx())
        assert priced.money == pytest.approx(2.0)

    def test_never_declines(self):
        priced = CooperativeSellerStrategy().price(
            PROPS, 100.0, ctx(reservation=0.001)
        )
        assert priced is not None


class TestCompetitive:
    def test_margin_markup(self):
        s = CompetitiveSellerStrategy(margin=0.5)
        priced = s.price(PROPS, 2.0, ctx())
        assert priced.money == pytest.approx(3.0)

    def test_load_raises_price(self):
        s = CompetitiveSellerStrategy(margin=0.0, load_coefficient=1.0)
        idle = s.price(PROPS, 2.0, ctx(load=0.0))
        busy = s.price(PROPS, 2.0, ctx(load=1.0))
        assert busy.money > idle.money

    def test_undercuts_reservation(self):
        s = CompetitiveSellerStrategy(margin=1.0)
        priced = s.price(PROPS, 2.0, ctx(reservation=3.0))
        assert priced.money == pytest.approx(3.0 * s.undercut)

    def test_declines_unprofitable(self):
        s = CompetitiveSellerStrategy(margin=0.1)
        assert s.price(PROPS, 5.0, ctx(reservation=1.0)) is None


class TestAdaptiveMargin:
    def test_margin_grows_on_win(self):
        s = AdaptiveMarginStrategy(margin=0.2, step=0.5)
        s.record_outcome("q", won=True)
        assert s.margin == pytest.approx(0.3)

    def test_margin_shrinks_on_loss(self):
        s = AdaptiveMarginStrategy(margin=0.2, step=0.5)
        s.record_outcome("q", won=False)
        assert s.margin == pytest.approx(0.1)

    def test_bounds_respected(self):
        s = AdaptiveMarginStrategy(
            margin=0.9, step=0.5, min_margin=0.05, max_margin=1.0
        )
        for _ in range(10):
            s.record_outcome("q", won=True)
        assert s.margin <= 1.0
        for _ in range(30):
            s.record_outcome("q", won=False)
        assert s.margin >= 0.05

    def test_converges_downward_under_competition(self):
        """Repeated losses drive the price toward cost."""
        s = AdaptiveMarginStrategy(margin=0.5, step=0.2)
        first = s.price(PROPS, 1.0, ctx()).money
        for _ in range(20):
            s.record_outcome("q", won=False)
        later = s.price(PROPS, 1.0, ctx()).money
        assert later < first


class TestBuyerStrategy:
    def test_reservation_fraction(self):
        s = BuyerStrategy(pressure=0.8)
        assert s.reservation(10.0) == pytest.approx(8.0)

    def test_no_estimate_no_reservation(self):
        assert BuyerStrategy().reservation(None) is None

    def test_initial_value_used(self):
        s = BuyerStrategy(initial_value=5.0)
        assert s.reservation(None) == 5.0

    def test_silent_buyer(self):
        s = BuyerStrategy(announce=False)
        assert s.reservation(10.0) is None

    def test_accepts_band(self):
        s = BuyerStrategy()
        assert s.accepts(10.0, None)
        assert s.accepts(10.0, 8.0)
        assert not s.accepts(100.0, 8.0)
