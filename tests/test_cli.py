"""Unit tests for the command-line interface."""

import pytest

from repro.cli import EXPERIMENTS, main


class TestTrade:
    def test_trade_and_execute(self, capsys):
        code = main(
            [
                "trade",
                "SELECT r0.part, SUM(r0.val) AS t FROM R0 r0 "
                "WHERE r0.cat = 3 GROUP BY r0.part",
                "--nodes", "4",
                "--relations", "1",
                "--rows", "400",
                "--execute",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "contracts:" in out
        assert "MATCH" in out

    def test_trade_idp_mode(self, capsys):
        code = main(
            [
                "trade",
                "SELECT * FROM R0 r0, R1 r1 WHERE r0.ref0 = r1.id",
                "--nodes", "4",
                "--relations", "2",
                "--rows", "400",
                "--plangen", "idp",
            ]
        )
        assert code == 0
        assert "plan (estimated response time" in capsys.readouterr().out

    def test_bad_sql(self, capsys):
        code = main(["trade", "SELECT FROM WHERE", "--nodes", "4"])
        assert code == 2
        assert "cannot parse" in capsys.readouterr().err

    def test_trade_with_fault_plan(self, capsys, tmp_path):
        from repro.faults import FaultPlan

        plan_file = tmp_path / "plan.json"
        FaultPlan.uniform(drop_rate=0.1, seed=11).to_file(plan_file)
        code = main(
            [
                "trade",
                "SELECT * FROM R0 r0 WHERE r0.cat = 3",
                "--nodes", "4",
                "--relations", "1",
                "--rows", "400",
                "--fault-plan", str(plan_file),
                "--execute",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "faults:" in out
        assert "MATCH" in out

    def test_trade_with_bad_fault_plan(self, capsys, tmp_path):
        plan_file = tmp_path / "bad.json"
        plan_file.write_text('{"chaos": true}')
        code = main(
            [
                "trade",
                "SELECT * FROM R0 r0",
                "--nodes", "4",
                "--relations", "1",
                "--fault-plan", str(plan_file),
            ]
        )
        assert code == 2
        assert "cannot load fault plan" in capsys.readouterr().err


class TestTelecom:
    def test_runs(self, capsys):
        code = main(["telecom", "--offices", "3", "--customers", "100"])
        out = capsys.readouterr().out
        assert code == 0
        assert "plan cost" in out
        assert "Corfu" in out  # the manager's offices appear in results


class TestExperiment:
    def test_unknown_id(self, capsys):
        code = main(["experiment", "E99"])
        assert code == 2
        assert "unknown" in capsys.readouterr().err

    def test_none_selected(self, capsys):
        code = main(["experiment"])
        assert code == 2

    def test_runs_one(self, capsys):
        code = main(["experiment", "e9"])
        out = capsys.readouterr().out
        assert code == 0
        assert "[E9]" in out

    def test_registry_complete(self):
        expected = {f"E{i}" for i in range(1, 15)}
        expected |= {"E-F1", "E-F2", "E-F3"}
        assert set(EXPERIMENTS) == expected


class TestList:
    def test_lists_all(self, capsys):
        code = main(["list-experiments"])
        out = capsys.readouterr().out
        assert code == 0
        for experiment_id in EXPERIMENTS:
            assert experiment_id in out
