"""Unit tests for the SPJ query model."""

import pytest

from repro.sql import (
    Aggregate,
    RelationRef,
    SPJQuery,
    Star,
    column,
    conjoin,
    eq,
    in_list,
)
from repro.sql.expr import FALSE, TRUE, ge, lt


def chain(n=3, cat=None):
    refs = tuple(RelationRef.of(f"R{i}", f"r{i}") for i in range(n))
    conjuncts = [
        eq(column(f"r{i}", "ref0"), column(f"r{i+1}", "id"))
        for i in range(n - 1)
    ]
    if cat is not None:
        conjuncts.append(eq(column("r0", "cat"), cat))
    return SPJQuery(relations=refs, predicate=conjoin(conjuncts))


class TestValidation:
    def test_needs_relations(self):
        with pytest.raises(ValueError):
            SPJQuery(relations=())

    def test_duplicate_aliases(self):
        with pytest.raises(ValueError):
            SPJQuery(
                relations=(RelationRef.of("r", "x"), RelationRef.of("s", "x"))
            )

    def test_predicate_alias_must_exist(self):
        with pytest.raises(ValueError):
            SPJQuery(
                relations=(RelationRef.of("r"),),
                predicate=eq(column("zzz", "a"), 1),
            )

    def test_projection_alias_must_exist(self):
        with pytest.raises(ValueError):
            SPJQuery(
                relations=(RelationRef.of("r"),),
                projections=(column("zzz", "a"),),
            )

    def test_group_by_alias_must_exist(self):
        with pytest.raises(ValueError):
            SPJQuery(
                relations=(RelationRef.of("r"),),
                group_by=(column("zzz", "a"),),
            )

    def test_aggregate_validation(self):
        with pytest.raises(ValueError):
            Aggregate("median", column("r", "a"))
        with pytest.raises(ValueError):
            Aggregate("sum", None)
        # COUNT(*) is fine
        Aggregate("count", None)


class TestStructure:
    def test_join_and_selection_conjuncts(self):
        q = chain(3, cat=5)
        assert len(q.join_conjuncts()) == 2
        assert len(q.selection_conjuncts()) == 1
        assert q.selection_on("r0") == eq(column("r0", "cat"), 5)
        assert q.selection_on("r1") is TRUE

    def test_aliases(self):
        assert chain(3).aliases == frozenset({"r0", "r1", "r2"})

    def test_relation_for(self):
        q = chain(2)
        assert q.relation_for("r1").name == "R1"
        with pytest.raises(KeyError):
            q.relation_for("zzz")

    def test_has_aggregates(self):
        q = chain(2)
        assert not q.has_aggregates
        agg = q.with_projections(
            [column("r0", "part"), Aggregate("sum", column("r0", "val"))]
        )
        assert agg.has_aggregates


class TestDerivation:
    def test_restrict_adds_conjunct(self):
        q = chain(2).restrict(eq(column("r0", "part"), 1))
        assert eq(column("r0", "part"), 1) in q.predicate.conjuncts()

    def test_subquery_on_keeps_internal_conjuncts(self):
        q = chain(3, cat=5)
        sub = q.subquery_on(["r0", "r1"])
        assert sub.aliases == frozenset({"r0", "r1"})
        # keeps the r0-r1 join and the cat selection, drops the r1-r2 join
        assert len(sub.join_conjuncts()) == 1
        assert eq(column("r0", "cat"), 5) in sub.predicate.conjuncts()

    def test_subquery_on_single_relation(self):
        sub = chain(3, cat=5).subquery_on(["r2"])
        assert sub.aliases == frozenset({"r2"})
        assert sub.predicate is TRUE

    def test_subquery_on_bad_subset(self):
        assert chain(2).subquery_on(["zzz"]) is None
        assert chain(2).subquery_on([]) is None

    def test_subquery_is_star(self):
        assert chain(3).subquery_on(["r0"]).is_star

    def test_order_helpers(self):
        q = chain(2).with_order([column("r0", "id")])
        assert q.order_by
        assert not q.without_order().order_by


class TestCanonical:
    def test_order_insensitive_key(self):
        refs = (RelationRef.of("R0", "a"), RelationRef.of("R1", "b"))
        p1 = conjoin([eq(column("a", "ref0"), column("b", "id")),
                      eq(column("a", "cat"), 1)])
        p2 = conjoin([eq(column("a", "cat"), 1),
                      eq(column("b", "id"), column("a", "ref0"))])
        q1 = SPJQuery(relations=refs, predicate=p1)
        q2 = SPJQuery(relations=tuple(reversed(refs)), predicate=p2)
        assert q1.key() == q2.key()

    def test_different_predicates_different_keys(self):
        q1 = chain(2, cat=1)
        q2 = chain(2, cat=2)
        assert q1.key() != q2.key()

    def test_canonical_idempotent(self):
        q = chain(3, cat=5)
        assert q.canonical().canonical() == q.canonical()


class TestRendering:
    def test_sql_contains_clauses(self):
        q = chain(2, cat=1).with_projections(
            [column("r0", "part"), Aggregate("sum", column("r0", "val"), "t")]
        )
        q = SPJQuery(
            relations=q.relations,
            predicate=q.predicate,
            projections=q.projections,
            group_by=(column("r0", "part"),),
            order_by=(column("r0", "part"),),
        )
        text = q.sql()
        assert "SELECT" in text and "FROM" in text and "WHERE" in text
        assert "GROUP BY" in text and "ORDER BY" in text
        assert "SUM(r0.val) AS t" in text

    def test_unsatisfiable_flag(self):
        q = chain(1).restrict(
            conjoin([ge(column("r0", "id"), 10), lt(column("r0", "id"), 5)])
        )
        assert q.is_unsatisfiable

    def test_output_columns_needs_schemas_for_star(self):
        with pytest.raises(ValueError):
            chain(2).output_columns()
