"""Equivalence tests: the bitmask :class:`JoinGraph` vs the original
frozenset-based enumeration helpers and optimizer loops.

The frozenset code (kept verbatim in :mod:`repro.optimizer.reference` and
as the reference helpers in :mod:`repro.optimizer.dp`) is the executable
specification; these tests assert the bitmask rewrite matches it exactly
— same connectivity verdicts, same conjunct order, same enumeration
order, and byte-identical plans out of DP, IDP, and the buyer generator.
"""

from __future__ import annotations

import random
from itertools import combinations

import pytest

from repro.optimizer import JoinGraph
from repro.optimizer.dp import (
    DynamicProgrammingOptimizer,
    connecting_conjuncts,
    subset_connected,
)
from repro.optimizer.idp import IDPOptimizer
from repro.optimizer.reference import (
    ReferenceDynamicProgrammingOptimizer,
    ReferenceIDPOptimizer,
    reference_buyer_generate,
)
from repro.sql import column
from repro.sql.expr import Comparison, Or
from repro.trading import BuyerPlanGenerator, RequestForBids, SellerAgent
from repro.workload import chain_query, star_query

from tests.conftest import make_federation


# ----------------------------------------------------------------------
# Random join-graph generation (plain `random`, fixed seeds).
# ----------------------------------------------------------------------
def random_graph(rng: random.Random):
    """Random aliases + conjuncts, including the awkward cases.

    Mixes binary equi-join edges, selections (single-table conjuncts,
    which the graph must ignore), conjuncts referencing aliases outside
    the universe (ditto), and OR-hyperedges spanning 3+ aliases (which
    connect all their aliases at once but only when fully contained).
    """
    n = rng.randint(1, 10)
    aliases = [f"r{i}" for i in range(n)]
    conjuncts = []
    for _ in range(rng.randint(0, 2 * n)):
        kind = rng.random()
        if kind < 0.6 and n >= 2:  # binary join edge
            a, b = rng.sample(aliases, 2)
            conjuncts.append(Comparison("=", column(a, "id"), column(b, "ref")))
        elif kind < 0.75:  # selection: ignored by the join graph
            a = rng.choice(aliases)
            conjuncts.append(Comparison(">", column(a, "v"), column(a, "w")))
        elif kind < 0.9 and n >= 3:  # OR hyperedge over 3 aliases
            a, b, c = rng.sample(aliases, 3)
            conjuncts.append(
                Or(
                    (
                        Comparison("=", column(a, "id"), column(b, "ref")),
                        Comparison("=", column(b, "id"), column(c, "ref")),
                    )
                )
            )
        else:  # references an alias outside the universe: ignored
            a = rng.choice(aliases)
            conjuncts.append(
                Comparison("=", column(a, "id"), column("zz", "ref"))
            )
    return aliases, conjuncts


def all_subsets(aliases):
    for size in range(len(aliases) + 1):
        for combo in combinations(sorted(aliases), size):
            yield frozenset(combo)


@pytest.mark.parametrize("seed", range(25))
def test_connected_matches_subset_connected(seed):
    rng = random.Random(seed)
    aliases, conjuncts = random_graph(rng)
    graph = JoinGraph(aliases, conjuncts)
    for subset in all_subsets(aliases):
        mask = graph.mask_of(subset)
        assert graph.connected(mask) == subset_connected(subset, conjuncts), (
            subset,
            [c.sql() for c in conjuncts],
        )
        assert graph.aliases_of(mask) == subset


@pytest.mark.parametrize("seed", range(25))
def test_connecting_matches_connecting_conjuncts(seed):
    rng = random.Random(seed + 1000)
    aliases, conjuncts = random_graph(rng)
    graph = JoinGraph(aliases, conjuncts)
    for subset in all_subsets(aliases):
        if not subset:
            continue
        for left in all_subsets(subset):
            if not left or left == subset:
                continue
            right = subset - left
            expected = connecting_conjuncts(conjuncts, left, right)
            got = graph.connecting(graph.mask_of(left), graph.mask_of(right))
            assert got == expected  # identity and order


@pytest.mark.parametrize("seed", range(25))
def test_subsets_by_size_matches_filtered_combinations(seed):
    rng = random.Random(seed + 2000)
    aliases, conjuncts = random_graph(rng)
    graph = JoinGraph(aliases, conjuncts)
    members = sorted(aliases)
    for connected_only in (True, False):
        by_size = graph.subsets_by_size(connected_only=connected_only)
        assert sorted(by_size) == list(range(2, len(members) + 1))
        for size, bucket in by_size.items():
            expected = [
                frozenset(combo)
                for combo in combinations(members, size)
                if not connected_only
                or subset_connected(frozenset(combo), conjuncts)
            ]
            assert [graph.aliases_of(m) for m in bucket] == expected


@pytest.mark.parametrize("seed", range(25))
def test_splits_match_original_nested_loop_order(seed):
    rng = random.Random(seed + 3000)
    aliases, conjuncts = random_graph(rng)
    graph = JoinGraph(aliases, conjuncts)
    for subset in all_subsets(aliases):
        size = len(subset)
        if size < 2:
            continue
        members = sorted(subset)
        anchor = members[0]
        expected = []
        for split_size in range(1, size // 2 + 1):
            for left_combo in combinations(members, split_size):
                left = frozenset(left_combo)
                if size == 2 * split_size and anchor not in left:
                    continue
                expected.append((left, subset - left))
        got = [
            (graph.aliases_of(left), graph.aliases_of(right))
            for left, right in graph.splits(graph.mask_of(subset))
        ]
        assert got == expected


def test_mask_roundtrip_and_members():
    graph = JoinGraph(["b", "a", "c", "a"], [])
    assert graph.aliases == ("a", "b", "c")
    assert graph.mask_of(("a", "c")) == 0b101
    assert graph.members(0b101) == ("a", "c")
    assert graph.bits(0b1101) == (0, 2, 3)
    assert graph.full_mask == 0b111


# ----------------------------------------------------------------------
# Optimizer byte-identity: bitmask DP/IDP vs the reference loops.
# ----------------------------------------------------------------------
def _queries():
    qs = [chain_query(n) for n in (2, 3, 5, 7)]
    qs.append(star_query(4))
    qs.append(chain_query(4, aggregate=True))
    return qs


def _assert_same_result(result, expected):
    assert result.enumerated == expected.enumerated
    got_best = {s: p for s, p in result.best.items()}
    assert list(got_best) == list(expected.best)  # same key *order* too
    for subset, plan in expected.best.items():
        assert got_best[subset].explain() == plan.explain()
        assert got_best[subset].response_time() == plan.response_time()
    if expected.plan is None:
        assert result.plan is None
    else:
        assert result.plan.explain() == expected.plan.explain()
        assert result.plan.response_time() == expected.plan.response_time()


def test_dp_byte_identical_to_reference():
    catalog, nodes, _est, _model, builder = make_federation(n_relations=8)
    site = nodes[0]
    new = DynamicProgrammingOptimizer(builder)
    ref = ReferenceDynamicProgrammingOptimizer(builder)
    for query in _queries():
        _assert_same_result(
            new.optimize(query, site), ref.optimize(query, site)
        )


@pytest.mark.parametrize("k,m", [(2, 5), (3, 2)])
def test_idp_byte_identical_to_reference(k, m):
    catalog, nodes, _est, _model, builder = make_federation(n_relations=8)
    site = nodes[0]
    new = IDPOptimizer(builder, k=k, m=m)
    ref = ReferenceIDPOptimizer(builder, k=k, m=m)
    for query in _queries():
        _assert_same_result(
            new.optimize(query, site), ref.optimize(query, site)
        )


# ----------------------------------------------------------------------
# Buyer plan-generation byte-identity over real seller offers.
# ----------------------------------------------------------------------
def _gather_offers(catalog, nodes, builder, query):
    rfb = RequestForBids(buyer="client", queries=(query,), round_number=1)
    offers = []
    for node in nodes:
        if node == "client":
            continue
        agent = SellerAgent(catalog.local(node), builder)
        node_offers, _work = agent.prepare_offers(rfb)
        offers.extend(node_offers)
    return offers


@pytest.mark.parametrize("mode", ["dp", "idp"])
def test_buyer_generate_byte_identical_to_reference(mode):
    catalog, nodes, _est, _model, builder = make_federation(
        nodes=6, n_relations=6
    )
    for query in (chain_query(3), chain_query(5), star_query(3)):
        offers = _gather_offers(catalog, nodes, builder, query)
        generator = BuyerPlanGenerator(builder, "client", mode=mode)
        got = generator.generate(query, offers)
        expected = reference_buyer_generate(generator, query, offers)
        assert got.enumerated == expected.enumerated
        assert len(got.candidates) == len(expected.candidates)
        for g, e in zip(got.candidates, expected.candidates):
            assert g.value == e.value
            assert g.plan.explain() == e.plan.explain()
        if expected.best is None:
            assert got.best is None
        else:
            assert got.best.value == expected.best.value
            assert got.best.plan.explain() == expected.best.plan.explain()
