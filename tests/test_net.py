"""Unit tests for the discrete-event network simulator."""

import pytest

from repro.cost import CostModel, NetworkParameters
from repro.net import AsyncClock, Message, MessageKind, Network, Simulator


class TestSimulator:
    def test_events_run_in_time_order(self):
        sim = Simulator()
        log = []
        sim.schedule(2.0, lambda: log.append("b"))
        sim.schedule(1.0, lambda: log.append("a"))
        sim.schedule(3.0, lambda: log.append("c"))
        sim.run_until_idle()
        assert log == ["a", "b", "c"]
        assert sim.now == 3.0

    def test_ties_break_by_insertion_order(self):
        sim = Simulator()
        log = []
        sim.schedule(1.0, lambda: log.append(1))
        sim.schedule(1.0, lambda: log.append(2))
        sim.run_until_idle()
        assert log == [1, 2]

    def test_nested_scheduling(self):
        sim = Simulator()
        log = []

        def outer():
            log.append(("outer", sim.now))
            sim.schedule(1.0, lambda: log.append(("inner", sim.now)))

        sim.schedule(1.0, outer)
        sim.run_until_idle()
        assert log == [("outer", 1.0), ("inner", 2.0)]

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Simulator().schedule(-1, lambda: None)

    def test_runaway_detection(self):
        sim = Simulator()

        def loop():
            sim.schedule(0.0, loop)

        sim.schedule(0.0, loop)
        with pytest.raises(RuntimeError):
            sim.run_until_idle(max_events=100)

    def test_budget_exactly_covers_queue(self):
        sim = Simulator()
        log = []
        for _ in range(3):
            sim.schedule(0.0, lambda: log.append(1))
        sim.run_until_idle(max_events=3)
        assert len(log) == 3

    def test_budget_checked_before_each_handler(self):
        # Regression: the budget used to be checked only after a handler
        # ran, so max_events + 1 handlers could execute before the error.
        sim = Simulator()
        log = []
        for _ in range(5):
            sim.schedule(0.0, lambda: log.append(1))
        with pytest.raises(RuntimeError):
            sim.run_until_idle(max_events=3)
        assert len(log) == 3


class TestNetwork:
    @pytest.fixture
    def net(self):
        model = CostModel(
            NetworkParameters(
                latency=0.01, bandwidth=1e6, control_message_bytes=1000
            )
        )
        return Network(model)

    def test_message_delivery_and_stats(self, net):
        received = []
        net.register("a", lambda n, m: None)
        net.register("b", lambda n, m: received.append(m))
        net.send(Message(MessageKind.RFB, "a", "b", "hello"))
        net.run()
        assert len(received) == 1
        assert received[0].payload == "hello"
        assert net.stats.messages == 1
        assert net.stats.count(MessageKind.RFB) == 1
        assert net.stats.bytes == 1000
        assert net.now == pytest.approx(0.011)

    def test_unknown_recipient(self, net):
        with pytest.raises(KeyError):
            net.send(Message(MessageKind.RFB, "a", "zzz", None))

    def test_duplicate_registration_rejected(self, net):
        net.register("a", lambda n, m: None)
        with pytest.raises(ValueError):
            net.register("a", lambda n, m: None)

    def test_compute_serializes_per_node(self, net):
        t1 = net.compute("a", 5.0)
        t2 = net.compute("a", 5.0)
        assert (t1, t2) == (5.0, 10.0)

    def test_compute_parallel_across_nodes(self, net):
        assert net.compute("a", 5.0) == 5.0
        assert net.compute("b", 5.0) == 5.0

    def test_negative_compute_rejected(self, net):
        with pytest.raises(ValueError):
            net.compute("a", -1)

    def test_earliest_defers_send(self, net):
        received_at = []
        net.register("a", lambda n, m: None)
        net.register("b", lambda n, m: received_at.append(n.now))
        net.send(Message(MessageKind.OFFER, "a", "b", None), earliest=5.0)
        net.run()
        assert received_at[0] == pytest.approx(5.011)

    def test_broadcast_skips_sender(self, net):
        seen = []
        for node in ("a", "b", "c"):
            net.register(node, lambda n, m: seen.append(m.recipient))
        count = net.broadcast("a", ["a", "b", "c"], MessageKind.RFB, None)
        net.run()
        assert count == 2
        assert sorted(seen) == ["b", "c"]

    def test_size_drives_delay(self, net):
        times = {}
        net.register("a", lambda n, m: None)
        net.register("b", lambda n, m: times.setdefault(m.payload, n.now))
        net.send(Message(MessageKind.DATA, "a", "b", "big", size_bytes=10**6))
        net.send(Message(MessageKind.DATA, "a", "b", "small", size_bytes=10))
        net.run()
        assert times["small"] < times["big"]

    def test_stats_delta(self, net):
        net.register("a", lambda n, m: None)
        net.register("b", lambda n, m: None)
        net.send(Message(MessageKind.RFB, "a", "b", None))
        net.run()
        snap = net.stats.snapshot()
        net.send(Message(MessageKind.OFFER, "b", "a", None))
        net.run()
        delta = net.stats.delta_since(snap)
        assert delta.messages == 1
        assert delta.count(MessageKind.OFFER) == 1
        assert delta.count(MessageKind.RFB) == 0

    def test_reply_from_handler(self, net):
        """A seller-style handler replying after computing."""
        replies = []

        def seller(n, m):
            done = n.compute("b", 2.0)
            n.send(
                Message(MessageKind.OFFER, "b", "a", "offer"), earliest=done
            )

        net.register("a", lambda n, m: replies.append(n.now))
        net.register("b", seller)
        net.send(Message(MessageKind.RFB, "a", "b", None))
        net.run()
        # 0.011 delivery, compute finishes at 2.011, + 0.011 reply
        assert replies[0] == pytest.approx(2.022, abs=1e-3)

    def test_unregister(self, net):
        net.register("a", lambda n, m: None)
        net.unregister("a")
        net.register("a", lambda n, m: None)  # no error
        assert "a" in net.nodes


class TestCancellableTimers:
    def test_cancel_before_fire(self):
        sim = Simulator()
        log = []
        handle = sim.schedule_cancellable(1.0, lambda: log.append("timer"))
        sim.schedule(2.0, lambda: log.append("later"))
        assert handle.active
        assert handle.cancel() is True
        assert not handle.active
        sim.run_until_idle()
        assert log == ["later"]
        # A cancelled entry neither fires nor advances the clock to its
        # own deadline on pop — time is driven by live events only.
        assert sim.now == 2.0

    def test_cancelled_timer_alone_leaves_clock_untouched(self):
        sim = Simulator()
        handle = sim.schedule_cancellable(5.0, lambda: None)
        handle.cancel()
        sim.run_until_idle()
        assert sim.now == 0.0
        assert sim.pending == 0

    def test_cancel_after_fire_returns_false(self):
        sim = Simulator()
        log = []
        handle = sim.schedule_cancellable(1.0, lambda: log.append("x"))
        sim.run_until_idle()
        assert log == ["x"]
        assert handle.fired and not handle.active
        assert handle.cancel() is False

    def test_cancel_is_idempotent(self):
        sim = Simulator()
        handle = sim.schedule_cancellable(1.0, lambda: None)
        assert handle.cancel() is True
        assert handle.cancel() is False
        sim.run_until_idle()
        assert not handle.fired

    def test_cancelled_entries_do_not_consume_event_budget(self):
        sim = Simulator()
        log = []
        handles = [
            sim.schedule_cancellable(1.0, lambda: log.append(1))
            for _ in range(10)
        ]
        for handle in handles:
            handle.cancel()
        sim.schedule(1.0, lambda: log.append("live"))
        sim.run_until_idle(max_events=1)  # only the live event counts
        assert log == ["live"]

    def test_tie_break_determinism_with_interleaved_cancels(self):
        # Cancelling some of several same-time events must not disturb
        # the insertion ordering of the survivors.
        sim = Simulator()
        log = []
        handles = {}
        for i in range(6):
            handles[i] = sim.schedule_cancellable(
                1.0, lambda i=i: log.append(i)
            )
        for i in (0, 3, 4):
            handles[i].cancel()
        sim.run_until_idle()
        assert log == [1, 2, 5]

    def test_pending_excludes_cancelled(self):
        sim = Simulator()
        keep = sim.schedule_cancellable(1.0, lambda: None)
        drop = sim.schedule_cancellable(1.0, lambda: None)
        assert sim.pending == 2
        drop.cancel()
        assert sim.pending == 1
        sim.run_until_idle()
        assert keep.fired and not drop.fired


class TestScheduleAtPastGuard:
    def test_past_deadline_raises(self):
        sim = Simulator()
        sim.schedule(2.0, lambda: None)
        sim.run_until_idle()
        with pytest.raises(ValueError):
            sim.schedule_at(1.0, lambda: None)

    def test_past_deadline_allowed_when_opted_in(self):
        sim = Simulator()
        sim.schedule(2.0, lambda: None)
        sim.run_until_idle()
        log = []
        sim.schedule_at(1.0, lambda: log.append(sim.now), allow_past=True)
        sim.run_until_idle()
        # The event fires "now", it cannot rewind the clock.
        assert log == [2.0]
        assert sim.now == 2.0

    def test_present_deadline_is_fine(self):
        sim = Simulator()
        log = []
        sim.schedule_at(0.0, lambda: log.append("now"))
        sim.run_until_idle()
        assert log == ["now"]

    def test_clamped_past_events_fire_in_insertion_order(self):
        # Several already-due deadlines clamp to "now" and therefore
        # share a fire time; the simulator's tie-break (insertion
        # order) must apply to them exactly as to ordinary ties.
        sim = Simulator()
        sim.schedule(3.0, lambda: None)
        sim.run_until_idle()
        log = []
        sim.schedule_at(1.0, lambda: log.append("first"), allow_past=True)
        sim.schedule_at(2.5, lambda: log.append("second"), allow_past=True)
        sim.schedule_at(0.5, lambda: log.append("third"), allow_past=True)
        sim.run_until_idle()
        assert log == ["first", "second", "third"]
        assert sim.now == 3.0


@pytest.fixture()
def loop():
    """A real asyncio loop running on a background thread."""
    import asyncio
    import threading

    loop = asyncio.new_event_loop()
    started = threading.Event()
    loop.call_soon(started.set)
    thread = threading.Thread(target=loop.run_forever, daemon=True)
    thread.start()
    assert started.wait(timeout=10.0)
    yield loop
    loop.call_soon_threadsafe(loop.stop)
    thread.join(timeout=10.0)
    loop.close()


class TestAsyncClock:
    """The wall-time clock honors the simulator's contract."""

    def test_events_fire_in_delay_order(self, loop):
        clock = AsyncClock(loop)
        log = []
        clock.schedule(0.03, lambda: log.append("c"))
        clock.schedule(0.01, lambda: log.append("a"))
        clock.schedule(0.02, lambda: log.append("b"))
        clock.run_until_idle()
        assert log == ["a", "b", "c"]
        assert clock.events_processed == 3
        assert clock.pending == 0

    def test_equal_deadlines_fire_in_insertion_order(self, loop):
        clock = AsyncClock(loop)
        log = []
        deadline = clock.now + 0.02
        for i in range(5):
            clock.schedule_at(deadline, lambda i=i: log.append(i))
        clock.run_until_idle()
        assert log == [0, 1, 2, 3, 4]

    def test_past_deadline_clamps_instead_of_raising(self, loop):
        clock = AsyncClock(loop)
        log = []
        # Wall time has advanced past 0.0 by now; the simulator would
        # demand allow_past=True, the wall clock just clamps.
        clock.schedule_at(0.0, lambda: log.append(clock.now))
        clock.run_until_idle()
        assert log and log[0] >= 0.0

    def test_negative_delay_rejected(self, loop):
        clock = AsyncClock(loop)
        with pytest.raises(ValueError):
            clock.schedule(-0.1, lambda: None)
        with pytest.raises(ValueError):
            clock.schedule_cancellable(-0.1, lambda: None)

    def test_cancelled_timer_does_not_fire(self, loop):
        clock = AsyncClock(loop)
        fired = []
        handle = clock.schedule_cancellable(0.02, lambda: fired.append(1))
        assert handle.cancel()
        assert not handle.cancel()  # idempotent
        clock.run_until_idle()
        assert fired == []

    def test_cancelled_earliest_deadline_unblocks_idle(self, loop):
        import time

        clock = AsyncClock(loop, quiesce_timeout=5.0)
        handle = clock.schedule_cancellable(30.0, lambda: None)
        handle.cancel()
        started = time.monotonic()
        clock.run_until_idle()
        # Idle must be declared immediately, not after the dead
        # timer's 30s deadline (nor the 5s quiesce timeout).
        assert time.monotonic() - started < 2.0

    def test_callback_error_surfaces_in_run_until_idle(self, loop):
        clock = AsyncClock(loop)

        def boom():
            raise RuntimeError("callback exploded")

        clock.schedule(0.01, boom)
        with pytest.raises(RuntimeError, match="callback exploded"):
            clock.run_until_idle()
        clock.run_until_idle()  # error is consumed, clock is reusable

    def test_quiesce_timeout_raises(self, loop):
        clock = AsyncClock(loop, quiesce_timeout=0.05)
        handle = clock.schedule_cancellable(30.0, lambda: None)
        with pytest.raises(RuntimeError, match="did not quiesce"):
            clock.run_until_idle()
        handle.cancel()

    def test_requires_running_loop(self):
        import asyncio

        idle_loop = asyncio.new_event_loop()
        try:
            clock = AsyncClock(idle_loop)
            with pytest.raises(RuntimeError, match="running event loop"):
                clock.run_until_idle()
        finally:
            idle_loop.close()

    def test_network_runs_on_an_async_clock(self, loop):
        # The Network facade accepts any Clock: a message round-trip
        # scheduled through it drains exactly as under the simulator.
        model = CostModel(NetworkParameters())
        network = Network(model, clock=AsyncClock(loop))
        received = []
        network.register("a", lambda net, msg: None)
        network.register("b", lambda net, msg: received.append(msg))
        network.send(
            Message(
                kind=MessageKind.RFB, sender="a", recipient="b", payload=None
            )
        )
        network.run()
        assert len(received) == 1
