"""Unit tests for relations, fragments, and partition schemes."""

import pytest

from repro.sql import (
    Attribute,
    Fragment,
    PartitionScheme,
    Relation,
    RelationRef,
    TRUE,
    column,
)
from repro.sql.expr import eq


class TestRelation:
    def test_of_shorthand(self):
        rel = Relation.of("r", "a", ("b", "float"), ("c", "str"))
        assert rel.attribute("a").dtype == "int"
        assert rel.attribute("b").dtype == "float"
        assert rel.attribute("c").dtype == "str"

    def test_duplicate_attributes_rejected(self):
        with pytest.raises(ValueError):
            Relation.of("r", "a", "a")

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Relation("r", ())

    def test_unknown_attribute(self):
        rel = Relation.of("r", "a")
        with pytest.raises(KeyError):
            rel.attribute("zzz")
        assert not rel.has_attribute("zzz")

    def test_bad_dtype(self):
        with pytest.raises(ValueError):
            Attribute("a", "decimal")


class TestRelationRef:
    def test_default_alias(self):
        assert RelationRef.of("r").alias == "r"
        assert RelationRef.of("r", "x").alias == "x"

    def test_column_helper(self):
        assert RelationRef.of("r", "x").column("a") == column("x", "a")


class TestFragment:
    def test_restriction_renamed(self):
        frag = Fragment("customer", 0, eq(column("customer", "office"), "Corfu"))
        restricted = frag.restriction_for("c")
        assert restricted == eq(column("c", "office"), "Corfu")

    def test_restriction_same_alias(self):
        pred = eq(column("customer", "office"), "Corfu")
        frag = Fragment("customer", 0, pred)
        assert frag.restriction_for("customer") is pred


class TestPartitionScheme:
    def test_single(self):
        scheme = PartitionScheme.single("r", 100)
        assert len(scheme.fragments) == 1
        assert scheme.fragments[0].predicate is TRUE
        assert scheme.total_rows == 100

    def test_by_list(self):
        scheme = PartitionScheme.by_list(
            "customer",
            "office",
            [["Athens"], ["Corfu", "Myconos"]],
            [10, 20],
        )
        assert scheme.total_rows == 30
        frag = scheme.fragment(1)
        assert frag.predicate.evaluate(
            {column("customer", "office"): "Corfu"}
        )
        assert not frag.predicate.evaluate(
            {column("customer", "office"): "Athens"}
        )

    def test_by_list_rejects_empty_group(self):
        with pytest.raises(ValueError):
            PartitionScheme.by_list("r", "a", [[]])

    def test_by_range_fragments_partition_domain(self):
        scheme = PartitionScheme.by_range("r", "id", [100, 200])
        col = column("r", "id")
        # every value lands in exactly one fragment
        for value in (0, 99, 100, 150, 199, 200, 5000):
            hits = [
                f.fragment_id
                for f in scheme.fragments
                if f.predicate.evaluate({col: value})
            ]
            assert len(hits) == 1

    def test_by_range_requires_sorted_boundaries(self):
        with pytest.raises(ValueError):
            PartitionScheme.by_range("r", "id", [200, 100])

    def test_by_range_requires_boundaries(self):
        with pytest.raises(ValueError):
            PartitionScheme.by_range("r", "id", [])

    def test_unknown_fragment(self):
        scheme = PartitionScheme.single("r")
        with pytest.raises(KeyError):
            scheme.fragment(5)

    def test_restriction_for_all_fragments_is_true(self):
        scheme = PartitionScheme.by_list("r", "a", [[1], [2], [3]])
        assert scheme.restriction_for("x", [0, 1, 2]) is TRUE

    def test_restriction_for_merges_in_lists(self):
        scheme = PartitionScheme.by_list("r", "a", [[1], [2], [3]])
        pred = scheme.restriction_for("x", [0, 2])
        assert pred.evaluate({column("x", "a"): 1})
        assert pred.evaluate({column("x", "a"): 3})
        assert not pred.evaluate({column("x", "a"): 2})

    def test_restriction_for_range_fragments(self):
        scheme = PartitionScheme.by_range("r", "id", [10, 20])
        pred = scheme.restriction_for("x", [0, 2])
        col = column("x", "id")
        assert pred.evaluate({col: 5})
        assert pred.evaluate({col: 25})
        assert not pred.evaluate({col: 15})

    def test_restriction_for_empty_selection_rejected(self):
        scheme = PartitionScheme.single("r")
        with pytest.raises(ValueError):
            scheme.restriction_for("x", [])

    def test_duplicate_fragment_ids_rejected(self):
        frag = Fragment("r", 0, TRUE)
        with pytest.raises(ValueError):
            PartitionScheme("r", None, (frag, frag))
