"""Unit tests for the buyer plan generator and predicates analyser."""

import pytest

from repro.sql import RelationRef, SPJQuery, column, eq, in_list
from repro.trading import AnswerProperties, BuyerPlanGenerator, Offer
from repro.trading.buyer import (
    BuyerPredicatesAnalyser,
    _is_complete,
    _union_coverage,
)
from repro.workload import chain_query
from tests.conftest import make_federation


@pytest.fixture(scope="module")
def world():
    catalog, nodes, estimator, model, builder = make_federation(
        nodes=8, n_relations=3, fragments=4, replicas=1, seed=3
    )
    return catalog, builder


def offer(
    query,
    coverage,
    time=1.0,
    rows=100.0,
    seller="s1",
    exact=False,
    money=0.0,
    request=None,
):
    return Offer(
        seller=seller,
        query=query,
        coverage={a: frozenset(f) for a, f in coverage.items()},
        properties=AnswerProperties(total_time=time, rows=rows, money=money),
        exact_projections=exact,
        request_key=(request or query).key(),
    )


class TestUnionCoverage:
    def test_merges_single_differing_alias(self):
        merged = _union_coverage(
            {"a": frozenset({0}), "b": frozenset({1})},
            {"a": frozenset({1}), "b": frozenset({1})},
        )
        assert merged is not None
        alias, coverage = merged
        assert alias == "a"
        assert coverage["a"] == frozenset({0, 1})

    def test_rejects_two_differences(self):
        assert (
            _union_coverage(
                {"a": frozenset({0}), "b": frozenset({0})},
                {"a": frozenset({1}), "b": frozenset({1})},
            )
            is None
        )

    def test_rejects_overlap(self):
        assert (
            _union_coverage(
                {"a": frozenset({0, 1})}, {"a": frozenset({1, 2})}
            )
            is None
        )

    def test_rejects_identical(self):
        assert (
            _union_coverage({"a": frozenset({0})}, {"a": frozenset({0})})
            is None
        )

    def test_rejects_different_aliases(self):
        assert (
            _union_coverage({"a": frozenset({0})}, {"b": frozenset({0})})
            is None
        )


class TestIsComplete:
    def test_complete(self):
        required = {"a": frozenset({0, 1}), "b": frozenset({0})}
        assert _is_complete(
            {"a": frozenset({0, 1})}, required
        )
        assert not _is_complete({"a": frozenset({0})}, required)


class TestPlanGeneration:
    def test_single_full_offer(self, world):
        catalog, builder = world
        query = chain_query(2)
        full_coverage = {
            "r0": catalog.scheme("R0").fragment_ids,
            "r1": catalog.scheme("R1").fragment_ids,
        }
        generator = BuyerPlanGenerator(builder, "client")
        result = generator.generate(
            query, [offer(query, full_coverage, time=2.0)]
        )
        assert result.found
        assert result.best.properties.total_time >= 2.0

    def test_fragment_union_assembly(self, world):
        catalog, builder = world
        query = chain_query(1)
        sub = query
        frags = sorted(catalog.scheme("R0").fragment_ids)
        offers = [
            offer(sub, {"r0": {f}}, time=0.5, seller=f"s{f}") for f in frags
        ]
        generator = BuyerPlanGenerator(builder, "client")
        result = generator.generate(query, offers)
        assert result.found
        # all four purchases appear
        assert len(result.best.purchased()) == len(frags)

    def test_join_of_partial_offers(self, world):
        catalog, builder = world
        query = chain_query(2)
        r0 = query.subquery_on(["r0"])
        r1 = query.subquery_on(["r1"])
        offers = [
            offer(r0, {"r0": catalog.scheme("R0").fragment_ids}, time=0.5),
            offer(r1, {"r1": catalog.scheme("R1").fragment_ids}, time=0.5),
        ]
        generator = BuyerPlanGenerator(builder, "client")
        result = generator.generate(query, offers)
        assert result.found

    def test_incomplete_coverage_fails(self, world):
        catalog, builder = world
        query = chain_query(1)
        result = BuyerPlanGenerator(builder, "client").generate(
            query, [offer(query, {"r0": {0}})]
        )
        assert not result.found

    def test_selection_shrinks_required(self, world):
        catalog, builder = world
        query = chain_query(1).restrict(eq(column("r0", "part"), 2))
        generator = BuyerPlanGenerator(builder, "client")
        required = generator.required_coverage(query)
        assert required["r0"] == frozenset({2})
        result = generator.generate(
            query, [offer(query, {"r0": {2}}, time=0.1)]
        )
        assert result.found

    def test_cheaper_replica_wins(self, world):
        catalog, builder = world
        query = chain_query(1)
        frags = catalog.scheme("R0").fragment_ids
        cheap = offer(query, {"r0": frags}, time=0.5, seller="cheap")
        pricey = offer(query, {"r0": frags}, time=5.0, seller="pricey")
        result = BuyerPlanGenerator(builder, "client").generate(
            query, [pricey, cheap]
        )
        sellers = {p.seller for p in result.best.purchased()}
        assert sellers == {"cheap"}

    def test_exact_final_offer_skips_reaggregation(self, world):
        catalog, builder = world
        query = chain_query(2, aggregate=True)
        coverage = {
            "r0": catalog.scheme("R0").fragment_ids,
            "r1": catalog.scheme("R1").fragment_ids,
        }
        final = offer(query, coverage, time=1.0, exact=True)
        result = BuyerPlanGenerator(builder, "client").generate(query, [final])
        assert result.found
        from repro.optimizer.plans import Purchased

        assert isinstance(result.best.plan, Purchased)

    def test_union_of_final_partial_aggregates(self, world):
        catalog, builder = world
        query = chain_query(2, aggregate=True)
        r1_full = catalog.scheme("R1").fragment_ids
        parts = [
            offer(query, {"r0": {f}, "r1": r1_full}, time=0.5,
                  seller=f"s{f}", exact=True)
            for f in sorted(catalog.scheme("R0").fragment_ids)
        ]
        result = BuyerPlanGenerator(builder, "client").generate(query, parts)
        assert result.found
        from repro.optimizer.plans import GroupAgg

        # no re-aggregation on top of exact partial aggregates
        assert not isinstance(result.best.plan, GroupAgg)

    def test_money_accumulates(self, world):
        catalog, builder = world
        query = chain_query(1)
        frags = sorted(catalog.scheme("R0").fragment_ids)
        offers = [
            offer(query, {"r0": {f}}, time=0.5, money=1.0, seller=f"s{f}")
            for f in frags
        ]
        result = BuyerPlanGenerator(builder, "client").generate(query, offers)
        assert result.best.properties.money == pytest.approx(len(frags))

    def test_idp_mode_still_finds_plans(self, world):
        catalog, builder = world
        query = chain_query(3)
        offers = []
        for alias, rel in (("r0", "R0"), ("r1", "R1"), ("r2", "R2")):
            sub = query.subquery_on([alias])
            offers.append(
                offer(sub, {alias: catalog.scheme(rel).fragment_ids},
                      time=0.5, seller=f"s-{alias}")
            )
        result = BuyerPlanGenerator(builder, "client", mode="idp").generate(
            query, offers
        )
        assert result.found

    def test_bad_mode_rejected(self, world):
        _, builder = world
        with pytest.raises(ValueError):
            BuyerPlanGenerator(builder, "client", mode="magic")

    def test_exact_flag_is_relative_to_request_not_original(self, world):
        """Regression: an offer answering a derived SELECT * sub-query is
        'exact' for ITS request but must seed a RAW entry for the
        original aggregate — otherwise final partial aggregates union
        with raw fragment rows and the executed answer is garbage."""
        catalog, builder = world
        query = chain_query(1, aggregate=True)  # GROUP BY r0.part
        frags = sorted(catalog.scheme("R0").fragment_ids)
        # a final partial aggregate for fragment 0
        final_part = offer(
            query.restrict(eq(column("r0", "part"), frags[0])),
            {"r0": {frags[0]}},
            time=0.5,
            exact=True,
            request=query,
        )
        # 'exact' SELECT * answers for the other fragments (their own
        # request was the derived single-relation part)
        raw_parts = [
            offer(
                query.subquery_on(["r0"]).restrict(
                    eq(column("r0", "part"), f)
                ),
                {"r0": {f}},
                time=0.5,
                exact=True,  # exact w.r.t. the derived SELECT * request
                seller=f"s{f}",
                request=query,
            )
            for f in frags[1:]
        ]
        result = BuyerPlanGenerator(builder, "client").generate(
            query, [final_part] + raw_parts
        )
        if result.found:
            from repro.optimizer.plans import Purchased

            star_flags = {
                leaf.query.is_star
                for leaf in result.best.plan.leaves()
                if isinstance(leaf, Purchased)
            }
            # never mixes final-shaped and raw answers in one plan
            assert len(star_flags) == 1

    def test_candidates_sorted_by_value(self, world):
        catalog, builder = world
        query = chain_query(1)
        frags = catalog.scheme("R0").fragment_ids
        offers = [
            offer(query, {"r0": frags}, time=1.0, seller="a"),
            offer(query, {"r0": frags}, time=2.0, seller="b"),
        ]
        result = BuyerPlanGenerator(builder, "client").generate(query, offers)
        values = [c.value for c in result.candidates]
        assert values == sorted(values)


class TestPredicatesAnalyser:
    def test_complement_queries(self, world):
        catalog, builder = world
        query = chain_query(1)
        generator = BuyerPlanGenerator(builder, "client")
        required = generator.required_coverage(query)
        analyser = BuyerPredicatesAnalyser(catalog.schemes)
        partial = offer(query, {"r0": {0}})
        derived = analyser.derive(query, [partial], required)
        # asks for the missing fragments {1,2,3}
        assert any(
            "part" in q.predicate.sql() and "r0" in q.sql() for q in derived
        )

    def test_per_relation_parts(self, world):
        catalog, builder = world
        query = chain_query(3)
        generator = BuyerPlanGenerator(builder, "client")
        required = generator.required_coverage(query)
        analyser = BuyerPredicatesAnalyser(catalog.schemes)
        derived = analyser.derive(query, [], required)
        assert len(derived) == 3  # one per relation

    def test_overlap_deconfliction(self, world):
        catalog, builder = world
        query = chain_query(1)
        generator = BuyerPlanGenerator(builder, "client")
        required = generator.required_coverage(query)
        analyser = BuyerPredicatesAnalyser(catalog.schemes)
        o1 = offer(query, {"r0": {0, 1}}, seller="a")
        o2 = offer(query, {"r0": {1, 2}}, seller="b")
        derived = analyser.derive(query, [o1, o2], required)
        keys = {q.key() for q in derived}
        assert len(keys) == len(derived)
        assert derived  # difference queries emitted

    def test_sort_variant(self, world):
        catalog, builder = world
        query = chain_query(2).with_order([column("r0", "id")])
        generator = BuyerPlanGenerator(builder, "client")
        required = generator.required_coverage(query)
        analyser = BuyerPredicatesAnalyser(catalog.schemes)
        derived = analyser.derive(query, [], required)
        assert any(not q.order_by for q in derived)

    def test_no_duplicates(self, world):
        catalog, builder = world
        query = chain_query(2)
        generator = BuyerPlanGenerator(builder, "client")
        required = generator.required_coverage(query)
        analyser = BuyerPredicatesAnalyser(catalog.schemes)
        o1 = offer(query.subquery_on(["r0"]), {"r0": {0}}, seller="a")
        o2 = offer(query.subquery_on(["r0"]), {"r0": {0}}, seller="b")
        derived = analyser.derive(query, [o1, o2], required)
        keys = [q.key() for q in derived]
        assert len(keys) == len(set(keys))
