"""Tier-1 coverage of the parallel trading engine (fast variants).

The full axis sweep lives in ``benchmarks/test_ep_equivalence.py``;
here one small federation checks each layer's byte-equivalence contract
plus the supporting refactors (cached structural hashes, the shared
coverage key, pickle hygiene for the optimizer's singletons).
"""

import itertools
import pickle
import random

import repro.trading.commodity as commodity
from repro.bench.harness import build_world, run_qt
from repro.parallel import (
    OfferFarm,
    SweepJob,
    bucket_loads,
    imbalance_ratio,
    lpt_partition,
    run_chunks,
    run_sweep,
    shutdown_pools,
    warm_pool,
)
from repro.sql.expr import TRUE, FALSE, And, Column, Comparison, Literal
from repro.sql.query import SPJQuery
from repro.sql.schema import RelationRef
from repro.trading import (
    BuyerPlanGenerator,
    OfferCache,
    RequestForBids,
    SellerAgent,
)
from repro.workload import chain_query


def _small_world():
    return build_world(nodes=8, n_relations=4, fragments=3, replicas=2, seed=7)


def _trade_signature(workers: int):
    commodity._offer_ids = itertools.count(1)
    world = _small_world()
    query = chain_query(3, selection_cat=3)
    m = run_qt(world, query, workers=workers, offer_cache=OfferCache())
    return (
        m.found, m.plan_cost, m.optimization_time, m.messages, m.iterations,
        m.offers, m.cache_hits, m.cache_misses, m.plan_explain,
    )


def test_workers2_trade_byte_identical():
    assert _trade_signature(1) == _trade_signature(2)


def test_partitioned_buyer_dp_equivalence():
    commodity._offer_ids = itertools.count(1)
    world = _small_world()
    query = chain_query(4, selection_cat=3)
    rfb = RequestForBids(buyer="client", queries=(query,), round_number=1)
    offers = []
    for node in world.nodes:
        if node == "client":
            continue
        agent = SellerAgent(
            world.catalog.local(node), world.builder, use_offer_cache=False
        )
        node_offers, _ = agent.prepare_offers(rfb)
        offers.extend(node_offers)
    serial = BuyerPlanGenerator(world.builder, "client").generate(query, offers)
    # threshold=1 forces the process-pool path even for this tiny frontier
    parallel = BuyerPlanGenerator(
        world.builder, "client", workers=2, parallel_threshold=1
    ).generate(query, offers)
    assert serial.enumerated == parallel.enumerated
    assert serial.best.plan.explain() == parallel.best.plan.explain()
    assert [c.value for c in serial.candidates] == [
        c.value for c in parallel.candidates
    ]


def test_lpt_partition_properties():
    """Every index lands exactly once; imbalance obeys the LPT bound."""
    rng = random.Random(20260808)
    cases = [
        [],  # no items
        [5.0],  # single item
        [0.0, 0.0, 0.0],  # all zero weight
        [100.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0],  # one dominant item
    ] + [
        [float(rng.randint(0, 1000)) for _ in range(rng.randint(1, 64))]
        for _ in range(30)
    ]
    for buckets in (1, 2, 4, 7, 16):
        for weights in cases:
            assignment = lpt_partition(weights, buckets)
            # Exactly-once coverage, ascending within each bucket.
            flat = sorted(i for group in assignment for i in group)
            assert flat == list(range(len(weights)))
            for group in assignment:
                assert group == sorted(group)
            assert len(assignment) <= min(buckets, len(weights) or 1)
            # List-scheduling bound: max load <= total/k + max item.
            loads = bucket_loads(assignment, weights)
            if weights and sum(weights) > 0:
                k = min(buckets, len(weights))
                bound = sum(weights) / k + max(weights)
                assert max(loads) <= bound + 1e-9
                assert imbalance_ratio(loads) >= 1.0 - 1e-9
            # Deterministic: the same inputs give the same partition.
            assert lpt_partition(weights, buckets) == assignment


def test_full_lattice_buyer_dp_equivalence():
    """Multi-level parallel lattice matches serial byte-for-byte."""
    commodity._offer_ids = itertools.count(1)
    world = build_world(nodes=8, n_relations=7, fragments=3, replicas=2,
                        seed=7)
    query = chain_query(6, selection_cat=3)
    rfb = RequestForBids(buyer="client", queries=(query,), round_number=1)
    offers = []
    for node in world.nodes:
        if node == "client":
            continue
        agent = SellerAgent(
            world.catalog.local(node), world.builder, use_offer_cache=False
        )
        node_offers, _ = agent.prepare_offers(rfb)
        offers.extend(node_offers)

    def signature(workers):
        result = BuyerPlanGenerator(
            world.builder, "client", workers=workers, parallel_threshold=1
        ).generate(query, offers)
        return (
            result.enumerated,
            [(c.value, c.plan.explain()) for c in result.candidates],
        )

    # threshold=1 ships every eligible level (sizes 2..6) to the pool
    assert signature(1) == signature(4)


def test_twelve_join_buyer_dp_byte_identical():
    """The acceptance case: a 12-join lattice at workers ∈ {1, 4}.

    Sellers use IDP local optimizers so offer generation stays cheap —
    the subject under test is the buyer's full-lattice parallel DP.
    """
    from repro.optimizer import IDPOptimizer

    commodity._offer_ids = itertools.count(1)
    world = build_world(nodes=6, n_relations=13, fragments=2, replicas=2,
                        seed=7)
    query = chain_query(13)
    rfb = RequestForBids(buyer="client", queries=(query,), round_number=1)
    offers = []
    for node in world.nodes:
        if node == "client":
            continue
        agent = SellerAgent(
            world.catalog.local(node), world.builder,
            optimizer=IDPOptimizer(world.builder), use_offer_cache=False,
        )
        node_offers, _ = agent.prepare_offers(rfb)
        offers.extend(node_offers)

    def signature(workers):
        result = BuyerPlanGenerator(
            world.builder, "client", workers=workers
        ).generate(query, offers)
        return (
            result.enumerated,
            [(c.value, c.plan.explain()) for c in result.candidates],
        )

    assert signature(1) == signature(4)


def test_seller_dp_parallel_equivalence():
    """The seller-side DP/IDP reuses the lattice partitioner unchanged."""
    from repro.optimizer import DynamicProgrammingOptimizer, IDPOptimizer

    world = build_world(nodes=6, n_relations=9, fragments=2, replicas=2,
                        seed=7)
    query = chain_query(8)
    site = world.nodes[1]

    def signature(result):
        return (
            result.enumerated,
            result.plan.explain() if result.plan else None,
            [
                (tuple(sorted(subset)), plan.explain())
                for subset, plan in result.best.items()
            ],
        )

    for cls in (DynamicProgrammingOptimizer, IDPOptimizer):
        serial = cls(world.builder).optimize(query, site)
        parallel = cls(
            world.builder, workers=2, parallel_threshold=1
        ).optimize(query, site)
        assert signature(serial) == signature(parallel), cls.__name__


def test_warm_pool_and_shutdown_idempotent():
    pool = warm_pool(2)
    assert warm_pool(2) is pool  # second warm is a no-op
    assert run_chunks(2, _double, [(3,), (4,), (5,)]) == [6, 8, 10]
    shutdown_pools()
    shutdown_pools()  # idempotent
    # Pools come back after shutdown (atexit can run after manual calls).
    assert run_chunks(2, _double, [(7,)]) == [14]
    shutdown_pools()


def _double(x):
    return 2 * x


def test_sweep_chunked_path_equivalence():
    """len(jobs) >= 4*workers engages LPT chunking; order must hold."""
    jobs = [
        SweepJob(
            label=f"qt-{joins}j-{i}",
            runner="qt",
            world={"nodes": 8, "n_relations": 4, "seed": 7},
            query={"n_relations": joins, "selection_cat": 3},
            run={"offer_cache": None, "use_offer_cache": False},
        )
        for i, joins in enumerate((2, 3, 2, 3, 2, 3, 2, 3))
    ]
    serial = run_sweep(jobs, workers=1)
    chunked = run_sweep(jobs, workers=2)
    assert [m.optimizer for m in chunked] == [j.label for j in jobs]
    assert [
        (m.plan_cost, m.optimization_time, m.messages, m.plan_explain)
        for m in serial
    ] == [
        (m.plan_cost, m.optimization_time, m.messages, m.plan_explain)
        for m in chunked
    ]


def test_offer_farm_round_matches_serial():
    world = _small_world()
    query = chain_query(3, selection_cat=3)
    rfb = RequestForBids(buyer="client", queries=(query,), round_number=1)
    sellers = world.seller_agents(offer_cache=OfferCache())

    commodity._offer_ids = itertools.count(1)
    serial = {}
    for node in sorted(sellers):
        serial[node] = sellers[node].prepare_offers(rfb)

    commodity._offer_ids = itertools.count(1)
    sellers2 = world.seller_agents(offer_cache=OfferCache())
    farm = OfferFarm(workers=2)
    prefetch = farm.prepare(sellers2, rfb, exclude="client")
    assert prefetch is not None
    for node in sorted(sellers2):
        batch = prefetch.consume(node, sellers2[node], rfb)
        assert batch is not None
        offers, work = batch
        ref_offers, ref_work = serial[node]
        assert work == ref_work
        assert [o.describe() for o in offers] == [
            o.describe() for o in ref_offers
        ]
        # Second consume (a fault-duplicated delivery) must defer to the
        # serial path.
        assert prefetch.consume(node, sellers2[node], rfb) is None


def test_offer_farm_serial_fallbacks():
    world = _small_world()
    query = chain_query(2, selection_cat=3)
    rfb = RequestForBids(buyer="client", queries=(query,), round_number=1)
    sellers = world.seller_agents()
    assert OfferFarm(workers=1).prepare(sellers, rfb) is None
    # Subcontracting sellers hold live network references: never farmed.
    next(iter(sellers.values())).subcontractor = object()
    assert OfferFarm(workers=2).prepare(sellers, rfb) is None


def test_run_sweep_order_stable():
    jobs = [
        SweepJob(
            label=f"qt-{joins}j",
            runner="qt",
            world={"nodes": 8, "n_relations": 4, "seed": 7},
            query={"n_relations": joins, "selection_cat": 3},
            run={"offer_cache": None, "use_offer_cache": False},
        )
        for joins in (2, 3, 2)
    ]
    serial = run_sweep(jobs, workers=1)
    parallel = run_sweep(jobs, workers=2)
    assert [m.optimizer for m in parallel] == ["qt-2j", "qt-3j", "qt-2j"]
    assert [
        (m.plan_cost, m.optimization_time, m.messages, m.plan_explain)
        for m in serial
    ] == [
        (m.plan_cost, m.optimization_time, m.messages, m.plan_explain)
        for m in parallel
    ]


def test_offer_cache_site_snapshot():
    cache = OfferCache(max_entries=4)
    key_a = ("q1", (("r0", (0,)),), "node1", None, "dp")
    key_b = ("q1", (("r0", (0,)),), "node2", None, "dp")
    cache.store(key_a, "result-a")
    cache.store(key_b, "result-b")
    snap = cache.snapshot_for_site("node1")
    assert len(snap) == 1 and snap.lookup(key_a) == "result-a"
    assert snap.stats.hits == 1 and cache.stats.hits == 0
    snap.store(key_b[:2] + ("node1", None, "idp"), "result-c")
    delta = snap.new_entries_since(cache.snapshot_for_site("node1"))
    assert [entry[1] for entry in delta] == ["result-c"]


def test_offer_coverage_key_cached_and_shared():
    query = chain_query(2, selection_cat=3)
    offer = commodity.Offer(
        seller="node1",
        query=query,
        coverage={"r1": frozenset((1, 0)), "r0": frozenset((2,))},
        properties=commodity.AnswerProperties(total_time=1.0, rows=10),
        exact_projections=False,
        request_key=query.key(),
    )
    key = offer.coverage_key()
    assert key == (("r0", (2,)), ("r1", (0, 1)))
    assert offer.coverage_key() is key  # memoized
    assert commodity.coverage_key(offer.coverage) == key
    assert offer.dedupe_key() == (
        offer.request_key, offer.query.key(), key, False
    )
    # Memo must not ship across pickling (PYTHONHASHSEED hygiene rule).
    assert "_coverage_key_memo" not in pickle.loads(
        pickle.dumps(offer)
    ).__dict__


def test_expr_hash_memo_and_pickle_hygiene():
    comparison = Comparison("=", Column("a", "x"), Literal(3))
    assert hash(comparison) == hash(comparison)
    assert "_hash_memo" in comparison.__dict__
    conj = And((comparison, Comparison("=", Column("a", "y"), Column("b", "y"))))
    assert conj.columns() is conj.columns()  # memoized frozenset
    restored = pickle.loads(pickle.dumps(conj))
    # Memos are process-local (string hashes are salted per process) and
    # must not travel; they repopulate on first use.
    assert "_hash_memo" not in restored.__dict__
    assert "_columns_memo" not in restored.__dict__
    assert restored == conj and hash(restored) == hash(conj)


def test_bool_singletons_survive_pickle():
    assert pickle.loads(pickle.dumps(TRUE)) is TRUE
    assert pickle.loads(pickle.dumps(FALSE)) is FALSE


def test_query_key_memoized():
    query = SPJQuery(
        relations=(RelationRef("R0", "r0"), RelationRef("R1", "r1")),
        predicate=Comparison("=", Column("r0", "x"), Column("r1", "x")),
    )
    assert query.key() is query.key()
    restored = pickle.loads(pickle.dumps(query))
    assert "_key_memo" not in restored.__dict__
    assert restored.key() == query.key()
